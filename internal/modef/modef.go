// Package modef reproduces the role MoDEF (Terwilliger et al., ER 2010)
// plays in the paper's architecture (Figure 7): given an edit to the client
// model, it examines the existing mapping fragments in the neighbourhood of
// the change to determine the mapping style in use — Table-per-Type,
// Table-per-Concrete-type or Table-per-Hierarchy — and synthesises the SMO
// (including the store-side changes) that maps the edit in the same style.
// It also converts a diff between two client schemas into an SMO sequence
// (drops first, then adds), the workflow sketched in §1.2.
package modef

import (
	"fmt"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/core"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/rel"
)

// Style identifies an inheritance-mapping strategy.
type Style int

// Mapping styles.
const (
	TPT Style = iota
	TPC
	TPH
	Unmapped
)

// String names the style as in the paper.
func (s Style) String() string {
	switch s {
	case TPT:
		return "TPT"
	case TPC:
		return "TPC"
	case TPH:
		return "TPH"
	default:
		return "unmapped"
	}
}

// InferStyle determines the mapping style of an entity type from its
// fragments: a store-side condition means a discriminator (TPH); a
// fragment covering all attributes of the type means TPC; a fragment
// covering only the declared attributes, relying on ancestors for the
// rest, means TPT.
func InferStyle(m *frag.Mapping, typeName string) Style {
	set := m.Client.SetFor(typeName)
	if set == nil {
		return Unmapped
	}
	th := m.Client.TheoryFor(set.Name)
	var own *frag.Fragment
	for _, f := range m.FragsOnSet(set.Name) {
		if cond.Implies(th, cond.TypeIs{Type: typeName, Only: true}, f.ClientCond) &&
			cond.Implies(th, f.ClientCond, cond.TypeIs{Type: typeName}) {
			own = f
			break
		}
	}
	if own == nil {
		return Unmapped
	}
	if _, isTrue := own.StoreCond.(cond.True); !isTrue {
		return TPH
	}
	all := m.Client.AttrNames(typeName)
	mapped := map[string]bool{}
	for _, a := range own.Attrs {
		mapped[a] = true
	}
	complete := true
	for _, a := range all {
		if !mapped[a] {
			complete = false
			break
		}
	}
	if complete && m.Client.Parent(typeName) != "" {
		return TPC
	}
	return TPT
}

// NeighbourhoodStyle infers the style to use for a new subtype of parent:
// the style of the nearest mapped ancestor with a non-root mapping, or the
// style of the parent's own fragment. For a hierarchy root mapped to a
// single table with no derived types yet, TPT is assumed (the EF default).
func NeighbourhoodStyle(m *frag.Mapping, parent string) Style {
	for _, ty := range append([]string{parent}, m.Client.Ancestors(parent)...) {
		s := InferStyle(m, ty)
		switch s {
		case TPH:
			return TPH
		case TPC:
			if ty != m.Client.RootOf(ty) {
				return TPC
			}
		case TPT:
			if ty != m.Client.RootOf(ty) {
				return TPT
			}
		}
	}
	// Root-only hierarchies: TPH if the root fragment carries a
	// discriminator, else TPT.
	if InferStyle(m, m.Client.RootOf(parent)) == TPH {
		return TPH
	}
	return TPT
}

// PlanAddEntity synthesises the AddEntity SMO for a new leaf type in the
// inferred neighbourhood style, creating the store-side table or columns
// the directive needs. It returns the SMO; the store schema inside m is
// extended as a side effect (the "directive on how the change maps to
// tables" of §1.2).
func PlanAddEntity(m *frag.Mapping, name, parent string, attrs []edm.Attribute) (core.SMO, error) {
	if m.Client.Type(parent) == nil {
		return nil, fmt.Errorf("modef: unknown parent type %q", parent)
	}
	return PlanAddEntityWithStyle(m, name, parent, attrs, NeighbourhoodStyle(m, parent))
}

// PlanAddEntityWithStyle synthesises the AddEntity SMO in an explicitly
// chosen style, creating the store-side table or columns it needs. The
// experiment harness uses it to run the full Figure 9/10 SMO suite.
func PlanAddEntityWithStyle(m *frag.Mapping, name, parent string, attrs []edm.Attribute, style Style) (core.SMO, error) {
	if m.Client.Type(parent) == nil {
		return nil, fmt.Errorf("modef: unknown parent type %q", parent)
	}
	switch style {
	case TPH:
		return planAddEntityTPH(m, name, parent, attrs)
	case TPC:
		return planAddEntityTPC(m, name, parent, attrs)
	default:
		return planAddEntityTPT(m, name, parent, attrs)
	}
}

func kindOf(a edm.Attribute) rel.Column {
	return rel.Column{Name: a.Name, Type: a.Type, Nullable: true, Enum: a.Enum}
}

func planAddEntityTPT(m *frag.Mapping, name, parent string, attrs []edm.Attribute) (core.SMO, error) {
	key := m.Client.KeyOf(parent)
	table := "T_" + name
	cols := make([]rel.Column, 0, len(key)+len(attrs))
	colOf := map[string]string{}
	for _, k := range key {
		ka, _ := m.Client.Attr(parent, k)
		cols = append(cols, rel.Column{Name: k, Type: ka.Type})
		colOf[k] = k
	}
	for _, a := range attrs {
		cols = append(cols, kindOf(a))
		colOf[a.Name] = a.Name
	}
	t := rel.Table{Name: table, Cols: cols, Key: key}
	// TPT tables carry a key foreign key to the parent's table.
	if pt := tableOfType(m, parent); pt != "" {
		t.FKs = []rel.ForeignKey{{Name: "fk_" + table, Cols: key, RefTable: pt, RefCols: m.Store.Table(pt).Key}}
	}
	if err := m.Store.AddTable(t); err != nil {
		return nil, err
	}
	return core.AddEntityTPT(name, parent, attrs, table, colOf), nil
}

func planAddEntityTPC(m *frag.Mapping, name, parent string, attrs []edm.Attribute) (core.SMO, error) {
	table := "T_" + name
	all := append([]edm.Attribute{}, inheritedAttrs(m, parent)...)
	all = append(all, attrs...)
	cols := make([]rel.Column, 0, len(all))
	colOf := map[string]string{}
	key := m.Client.KeyOf(parent)
	for _, a := range all {
		c := kindOf(a)
		if isIn(key, a.Name) {
			c.Nullable = false
		}
		cols = append(cols, c)
		colOf[a.Name] = a.Name
	}
	if err := m.Store.AddTable(rel.Table{Name: table, Cols: cols, Key: key}); err != nil {
		return nil, err
	}
	return core.AddEntityTPC(name, parent, attrs, table, colOf), nil
}

func planAddEntityTPH(m *frag.Mapping, name, parent string, attrs []edm.Attribute) (core.SMO, error) {
	table := tableOfType(m, parent)
	if table == "" {
		return nil, fmt.Errorf("modef: no TPH table found for hierarchy of %q", parent)
	}
	// The shared TPH table is mutated in place (new columns, an extended
	// discriminator enum); take a private CoW copy first so the plan never
	// writes through into the generation the mapping was cloned from.
	tab := m.Store.MutableTable(table)
	disc, val, err := discriminatorFor(m, table, name)
	if err != nil {
		return nil, err
	}
	colOf := map[string]string{}
	for _, a := range inheritedAttrs(m, parent) {
		colOf[a.Name] = a.Name
	}
	for _, a := range attrs {
		// New attributes need new nullable columns in the shared table.
		if !tab.HasCol(a.Name) {
			tab.Cols = append(tab.Cols, kindOf(a))
		}
		colOf[a.Name] = a.Name
	}
	// Extend the discriminator enumeration with the new value.
	for i := range tab.Cols {
		if tab.Cols[i].Name == disc {
			tab.Cols[i].Enum = append(tab.Cols[i].Enum, val)
		}
	}
	return core.AddEntityTPH(name, parent, attrs, table, disc, val, colOf), nil
}

// PlanAddAssociation synthesises an AddAssociationFK SMO mapped to a new
// FK column in E1's table (the style the paper's customer model uses), or
// an AddAssociationJT when the association is many-to-many.
func PlanAddAssociation(m *frag.Mapping, name, e1, e2 string, m1, m2 edm.Mult) (core.SMO, error) {
	if m2 == edm.Many && m1 == edm.Many {
		return planAssociationJT(m, name, e1, e2, m1, m2)
	}
	if m2 == edm.Many {
		// Flip so the ≤1 end is E2.
		e1, e2 = e2, e1
		m1, m2 = m2, m1
	}
	t1 := tableOfType(m, e1)
	if t1 == "" {
		return nil, fmt.Errorf("modef: endpoint %q has no table", e1)
	}
	// FK columns are appended to E1's table in place; CoW-copy it first.
	tab := m.Store.MutableTable(t1)
	key2 := m.Client.KeyOf(e2)
	t2 := tableOfType(m, e2)
	fkCols := make([]string, len(key2))
	for i, k := range key2 {
		fkCols[i] = "FK_" + name + "_" + k
		ka, _ := m.Client.Attr(e2, k)
		tab.Cols = append(tab.Cols, rel.Column{Name: fkCols[i], Type: ka.Type, Nullable: true})
	}
	if t2 != "" {
		if err := m.Store.AddForeignKey(t1, rel.ForeignKey{
			Name: "fk_" + name, Cols: fkCols, RefTable: t2, RefCols: m.Store.Table(t2).Key,
		}); err != nil {
			return nil, err
		}
	}
	return &core.AddAssociationFK{
		Name: name,
		E1:   e1, Mult1: m1,
		E2: e2, Mult2: m2,
		Table:    t1,
		KeyCols1: tab.Key,
		KeyCols2: fkCols,
	}, nil
}

func planAssociationJT(m *frag.Mapping, name, e1, e2 string, m1, m2 edm.Mult) (core.SMO, error) {
	table := "JT_" + name
	key1 := m.Client.KeyOf(e1)
	key2 := m.Client.KeyOf(e2)
	var cols []rel.Column
	var kc1, kc2, key []string
	for _, k := range key1 {
		ka, _ := m.Client.Attr(e1, k)
		n := "L_" + k
		cols = append(cols, rel.Column{Name: n, Type: ka.Type})
		kc1 = append(kc1, n)
		key = append(key, n)
	}
	for _, k := range key2 {
		ka, _ := m.Client.Attr(e2, k)
		n := "R_" + k
		cols = append(cols, rel.Column{Name: n, Type: ka.Type})
		kc2 = append(kc2, n)
		key = append(key, n)
	}
	t := rel.Table{Name: table, Cols: cols, Key: key}
	if t1 := tableOfType(m, e1); t1 != "" {
		t.FKs = append(t.FKs, rel.ForeignKey{Name: "fk_" + name + "_1", Cols: kc1, RefTable: t1, RefCols: m.Store.Table(t1).Key})
	}
	if t2 := tableOfType(m, e2); t2 != "" {
		t.FKs = append(t.FKs, rel.ForeignKey{Name: "fk_" + name + "_2", Cols: kc2, RefTable: t2, RefCols: m.Store.Table(t2).Key})
	}
	if err := m.Store.AddTable(t); err != nil {
		return nil, err
	}
	return &core.AddAssociationJT{
		Name: name,
		E1:   e1, Mult1: m1,
		E2: e2, Mult2: m2,
		Table:    table,
		KeyCols1: kc1, KeyCols2: kc2,
	}, nil
}

// TableOfType returns the table of the fragment that stores the type's own
// attributes, or "" when the type is unmapped.
func TableOfType(m *frag.Mapping, ty string) string { return tableOfType(m, ty) }

// tableOfType returns the table of the fragment that stores the type's own
// attributes, or "". Among the fragments covering the type, one that maps
// a declared (non-inherited) attribute wins; ancestors' fragments merely
// store the inherited part.
func tableOfType(m *frag.Mapping, ty string) string {
	set := m.Client.SetFor(ty)
	if set == nil {
		return ""
	}
	declared := map[string]bool{}
	if t := m.Client.Type(ty); t != nil {
		for _, a := range t.Attrs {
			declared[a.Name] = true
		}
	}
	th := m.Client.TheoryFor(set.Name)
	fallback := ""
	for _, f := range m.FragsOnSet(set.Name) {
		if !cond.Implies(th, cond.TypeIs{Type: ty, Only: true}, f.ClientCond) {
			continue
		}
		if fallback == "" {
			fallback = f.Table
		}
		for _, a := range f.Attrs {
			if declared[a] {
				return f.Table
			}
		}
	}
	return fallback
}

// discriminatorFor finds the TPH discriminator column of a shared table by
// inspecting the store conditions of its fragments, and returns a fresh
// value for the new type.
func discriminatorFor(m *frag.Mapping, table, newType string) (string, cond.Value, error) {
	for _, f := range m.FragsOnTable(table) {
		for _, a := range cond.Atoms(f.StoreCond) {
			if a.Kind == cond.AtomCmp && a.Op == cond.OpEq {
				return a.Attr, cond.String(newType), nil
			}
		}
	}
	return "", cond.Value{}, fmt.Errorf("modef: table %q has no discriminator", table)
}

func inheritedAttrs(m *frag.Mapping, parent string) []edm.Attribute {
	return m.Client.AllAttrs(parent)
}

func isIn(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Diff computes an SMO sequence turning the mapping's current client schema
// into the target schema: drop operations for removed leaf types and
// associations first, then adds for new associations and new leaf types in
// dependency order. It covers the evolution steps the incremental compiler
// supports; unsupported edits (moved attributes, retyped hierarchies)
// return an error.
func Diff(m *frag.Mapping, target *edm.Schema) ([]core.SMO, error) {
	var ops []core.SMO

	// Drops: associations absent from the target, then leaf types absent
	// from the target (leaves first, repeatedly, to unwind branches).
	for _, a := range m.Client.Associations() {
		if target.Association(a.Name) == nil {
			ops = append(ops, &core.DropAssociation{Name: a.Name})
		}
	}
	current := map[string]bool{}
	for _, t := range m.Client.Types() {
		current[t.Name] = true
	}
	removed := map[string]bool{}
	for {
		progress := false
		for _, t := range m.Client.Types() {
			if removed[t.Name] || target.Type(t.Name) != nil {
				continue
			}
			leaf := true
			for _, d := range m.Client.Descendants(t.Name) {
				if !removed[d] {
					leaf = false
				}
			}
			if leaf {
				ops = append(ops, &core.DropEntity{Name: t.Name})
				removed[t.Name] = true
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	for _, t := range m.Client.Types() {
		if target.Type(t.Name) == nil && !removed[t.Name] {
			return nil, fmt.Errorf("modef: cannot drop non-leaf type %q", t.Name)
		}
	}

	// Adds: new types top-down so parents exist first.
	added := map[string]bool{}
	for {
		progress := false
		for _, t := range target.Types() {
			if current[t.Name] || added[t.Name] {
				continue
			}
			if t.Base == "" {
				return nil, fmt.Errorf("modef: cannot add new hierarchy root %q incrementally", t.Name)
			}
			if !current[t.Base] && !added[t.Base] {
				continue
			}
			ops = append(ops, &plannedAdd{name: t.Name, parent: t.Base, attrs: t.Attrs})
			added[t.Name] = true
			progress = true
		}
		if !progress {
			break
		}
	}
	for _, t := range target.Types() {
		if !current[t.Name] && !added[t.Name] {
			return nil, fmt.Errorf("modef: cannot order addition of type %q", t.Name)
		}
	}

	// New associations last, once both endpoints exist.
	for _, a := range target.Associations() {
		if m.Client.Association(a.Name) == nil {
			ops = append(ops, &plannedAssoc{a: *a})
		}
	}
	return ops, nil
}

// PlannedAddEntity returns a deferred AddEntity SMO: style inference and
// the store-side table directive are resolved against the mapping the
// operation is eventually applied to (inside the incremental compiler's
// cloned generation), not against the mapping visible now. Long-lived
// callers — the evolution pipeline, the serving daemon — use it so
// planning never mutates a generation readers may be holding.
func PlannedAddEntity(name, parent string, attrs []edm.Attribute) core.SMO {
	return &plannedAdd{name: name, parent: parent, attrs: attrs}
}

// PlannedAddAssociation is the deferred form of PlanAddAssociation, keyed
// by the association's declaration.
func PlannedAddAssociation(a edm.Association) core.SMO {
	return &plannedAssoc{a: a}
}

// plannedAdd defers style inference to application time, when earlier SMOs
// in the sequence have already evolved the mapping.
type plannedAdd struct {
	name, parent string
	attrs        []edm.Attribute
}

// Describe implements core.SMO.
func (p *plannedAdd) Describe() string {
	return fmt.Sprintf("PlanAddEntity(%s < %s)", p.name, p.parent)
}

// Plan implements core.DeferredSMO.
func (p *plannedAdd) Plan(m *frag.Mapping) (core.SMO, error) {
	return PlanAddEntity(m, p.name, p.parent, p.attrs)
}

type plannedAssoc struct {
	a edm.Association
}

// Describe implements core.SMO.
func (p *plannedAssoc) Describe() string { return fmt.Sprintf("PlanAddAssociation(%s)", p.a.Name) }

// Plan implements core.DeferredSMO.
func (p *plannedAssoc) Plan(m *frag.Mapping) (core.SMO, error) {
	return PlanAddAssociation(m, p.a.Name, p.a.End1.Type, p.a.End2.Type, p.a.End1.Mult, p.a.End2.Mult)
}
