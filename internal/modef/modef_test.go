package modef

import (
	"testing"

	"github.com/ormkit/incmap/internal/compiler"
	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/core"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/orm"
	"github.com/ormkit/incmap/internal/workload"
)

func compiledFull(t *testing.T) (*frag.Mapping, *frag.Views) {
	t.Helper()
	m := workload.PaperFull()
	v, err := compiler.New().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	return m, v
}

func TestInferStyle(t *testing.T) {
	m, _ := compiledFull(t)
	if s := InferStyle(m, "Employee"); s != TPT {
		t.Errorf("Employee style = %v, want TPT", s)
	}
	if s := InferStyle(m, "Customer"); s != TPC {
		t.Errorf("Customer style = %v, want TPC", s)
	}
	hub := workload.HubRim(workload.HubRimOptions{N: 2, M: 1, TPH: true})
	if s := InferStyle(hub, "Hub1"); s != TPH {
		t.Errorf("Hub1 style = %v, want TPH", s)
	}
}

func TestNeighbourhoodStyle(t *testing.T) {
	m, _ := compiledFull(t)
	if s := NeighbourhoodStyle(m, "Employee"); s != TPT {
		t.Errorf("below Employee: %v, want TPT", s)
	}
	if s := NeighbourhoodStyle(m, "Customer"); s != TPC {
		t.Errorf("below Customer: %v, want TPC", s)
	}
	hub := workload.HubRim(workload.HubRimOptions{N: 2, M: 1, TPH: true})
	if s := NeighbourhoodStyle(hub, "Hub1"); s != TPH {
		t.Errorf("below Hub1: %v, want TPH", s)
	}
}

// TestPlanAddEntityFollowsStyle plans additions under differently-mapped
// parents and verifies the synthesized SMOs compile and roundtrip.
func TestPlanAddEntityFollowsStyle(t *testing.T) {
	m, v := compiledFull(t)
	ic := core.NewIncremental()

	op, err := PlanAddEntity(m, "Manager", "Employee",
		[]edm.Attribute{{Name: "Grade", Type: cond.KindInt, Nullable: true}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := op.(*core.AddEntity); !ok {
		t.Fatalf("planned SMO is %T", op)
	}
	m, v, err = ic.Apply(m, v, op)
	if err != nil {
		t.Fatal(err)
	}
	if got := InferStyle(m, "Manager"); got != TPT {
		t.Errorf("Manager mapped %v, want TPT", got)
	}
	if err := orm.Roundtrip(m, v, workload.PaperClientState()); err != nil {
		t.Fatal(err)
	}
}

func TestPlanAddEntityTPH(t *testing.T) {
	m := workload.HubRim(workload.HubRimOptions{N: 2, M: 1, TPH: true})
	v, err := compiler.New().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	op, err := PlanAddEntity(m, "Hub2", "Hub1",
		[]edm.Attribute{{Name: "H2", Type: cond.KindString, Nullable: true}})
	if err != nil {
		t.Fatal(err)
	}
	m, _, err = core.NewIncremental().Apply(m, v, op)
	if err != nil {
		t.Fatal(err)
	}
	if got := InferStyle(m, "Hub2"); got != TPH {
		t.Errorf("Hub2 mapped %v, want TPH", got)
	}
}

func TestPlanAddAssociation(t *testing.T) {
	m, v := compiledFull(t)
	ic := core.NewIncremental()
	op, err := PlanAddAssociation(m, "Mentors", "Employee", "Employee", edm.Many, edm.ZeroOne)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ic.Apply(m, v, op); err != nil {
		t.Fatal(err)
	}

	opJT, err := PlanAddAssociation(m, "Handles", "Employee", "Customer", edm.Many, edm.Many)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := opJT.(*core.AddAssociationJT); !ok {
		t.Fatalf("m:n association planned as %T", opJT)
	}
	if _, _, err := ic.Apply(m, v, opJT); err != nil {
		t.Fatal(err)
	}
}

// TestDiffGeneratesSMOSequence edits a copy of the client schema and
// checks the diff-driven evolution reaches it.
func TestDiffGeneratesSMOSequence(t *testing.T) {
	m, v := compiledFull(t)
	target := m.Client.Clone()
	if err := target.AddType(edm.EntityType{
		Name: "Manager", Base: "Employee",
		Attrs: []edm.Attribute{{Name: "Grade", Type: cond.KindInt, Nullable: true}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := target.AddAssociation(edm.Association{
		Name: "ReportsTo",
		End1: edm.End{Type: "Employee", Mult: edm.Many},
		End2: edm.End{Type: "Manager", Mult: edm.ZeroOne},
	}); err != nil {
		t.Fatal(err)
	}

	ops, err := Diff(m, target)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 {
		t.Fatalf("ops = %d, want 2", len(ops))
	}
	ic := core.NewIncremental()
	m2, v2, err := ic.ApplyAll(m, v, ops...)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Client.Type("Manager") == nil || m2.Client.Association("ReportsTo") == nil {
		t.Fatal("target schema not reached")
	}
	if err := orm.Roundtrip(m2, v2, workload.PaperClientState()); err != nil {
		t.Fatal(err)
	}
}

// TestDiffTPCUnderAssociationEndpointRejected mirrors §4.2's observation:
// most validation failures during testing were AddEntityTPC cases like
// Figure 6. A TPC subtype below an association endpoint (Customer) removes
// its keys from the endpoint's table, so the planned SMO must be aborted.
func TestDiffTPCUnderAssociationEndpointRejected(t *testing.T) {
	m, v := compiledFull(t)
	target := m.Client.Clone()
	if err := target.AddType(edm.EntityType{
		Name: "Vip", Base: "Customer",
		Attrs: []edm.Attribute{{Name: "Tier", Type: cond.KindInt, Nullable: true}},
	}); err != nil {
		t.Fatal(err)
	}
	ops, err := Diff(m, target)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := core.NewIncremental().ApplyAll(m, v, ops...); err == nil {
		t.Fatal("TPC under an association endpoint must fail validation")
	}
}

// TestDiffDropsFirst removes a type and its association from the target.
func TestDiffDropsFirst(t *testing.T) {
	m, v := compiledFull(t)
	target := edm.NewSchema()
	if err := target.AddType(edm.EntityType{
		Name: "Person",
		Attrs: []edm.Attribute{
			{Name: "Id", Type: cond.KindInt},
			{Name: "Name", Type: cond.KindString, Nullable: true},
		},
		Key: []string{"Id"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := target.AddType(edm.EntityType{
		Name: "Employee", Base: "Person",
		Attrs: []edm.Attribute{{Name: "Department", Type: cond.KindString, Nullable: true}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := target.AddSet(edm.EntitySet{Name: "Persons", Type: "Person"}); err != nil {
		t.Fatal(err)
	}

	ops, err := Diff(m, target)
	if err != nil {
		t.Fatal(err)
	}
	// Supports must be dropped before Customer.
	if len(ops) != 2 {
		t.Fatalf("ops = %v", ops)
	}
	if _, ok := ops[0].(*core.DropAssociation); !ok {
		t.Fatalf("first op = %T, want DropAssociation", ops[0])
	}
	ic := core.NewIncremental()
	m2, _, err := ic.ApplyAll(m, v, ops...)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Client.Type("Customer") != nil {
		t.Fatal("Customer survived")
	}
}

func TestTableOfType(t *testing.T) {
	m, _ := compiledFull(t)
	if got := TableOfType(m, "Employee"); got != "Emp" {
		t.Errorf("TableOfType(Employee) = %q", got)
	}
	if got := TableOfType(m, "Customer"); got != "Client" {
		t.Errorf("TableOfType(Customer) = %q", got)
	}
	if got := TableOfType(m, "Ghost"); got != "" {
		t.Errorf("TableOfType(Ghost) = %q", got)
	}
}

func TestDiffRejectsNewRoot(t *testing.T) {
	m, _ := compiledFull(t)
	target := m.Client.Clone()
	if err := target.AddType(edm.EntityType{
		Name: "Island", Attrs: []edm.Attribute{{Name: "Id", Type: cond.KindInt}}, Key: []string{"Id"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := Diff(m, target); err == nil {
		t.Fatal("new hierarchy root accepted by Diff")
	}
}

func TestInferStyleUnmapped(t *testing.T) {
	m, _ := compiledFull(t)
	if s := InferStyle(m, "Ghost"); s != Unmapped {
		t.Errorf("style of unknown type = %v", s)
	}
	if Unmapped.String() != "unmapped" || TPT.String() != "TPT" {
		t.Error("style names wrong")
	}
}
