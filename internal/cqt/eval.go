package cqt

import (
	"fmt"
	"strings"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/state"
)

// Env supplies the data a query tree runs over. Query views read Store;
// update views read Client.
type Env struct {
	Catalog *Catalog
	Client  *state.ClientState
	Store   *state.StoreState
}

// tuple is an intermediate row: column values plus the entity types of the
// subjects contributing to it (for IS OF conditions).
type tuple struct {
	types map[string]string
	data  state.Row
}

func (t tuple) instanceType(subject string) string { return t.types[subject] }

func (t tuple) Lookup(attr string) (cond.Value, bool) {
	v, ok := t.data[attr]
	return v, ok
}

// InstanceType implements cond.Instance.
func (t tuple) InstanceType(subject string) string { return t.instanceType(subject) }

// Result is the relational output of evaluating a query tree.
type Result struct {
	Cols []string
	Rows []state.Row
}

// Eval evaluates the query tree over the environment.
func Eval(env *Env, e Expr) (*Result, error) {
	cols, err := env.Catalog.Cols(e)
	if err != nil {
		return nil, err
	}
	ts, err := eval(env, e)
	if err != nil {
		return nil, err
	}
	rows := make([]state.Row, len(ts))
	for i, t := range ts {
		rows[i] = t.data
	}
	return &Result{Cols: cols, Rows: rows}, nil
}

func eval(env *Env, e Expr) ([]tuple, error) {
	switch v := e.(type) {
	case ScanTable:
		if env.Store == nil {
			return nil, fmt.Errorf("cqt: table scan %q without a store state", v.Table)
		}
		if env.Catalog.Store.Table(v.Table) == nil {
			return nil, fmt.Errorf("cqt: unknown table %q", v.Table)
		}
		rows := env.Store.Tables[v.Table]
		out := make([]tuple, len(rows))
		for i, r := range rows {
			out[i] = tuple{data: r.Clone()}
		}
		return out, nil

	case ScanSet:
		if env.Client == nil {
			return nil, fmt.Errorf("cqt: entity-set scan %q without a client state", v.Set)
		}
		if env.Catalog.Client.Set(v.Set) == nil {
			return nil, fmt.Errorf("cqt: unknown entity set %q", v.Set)
		}
		es := env.Client.Entities[v.Set]
		out := make([]tuple, len(es))
		for i, ent := range es {
			out[i] = tuple{types: map[string]string{"": ent.Type}, data: ent.Attrs.Clone()}
		}
		return out, nil

	case ScanAssoc:
		if env.Client == nil {
			return nil, fmt.Errorf("cqt: association scan %q without a client state", v.Assoc)
		}
		if env.Catalog.Client.Association(v.Assoc) == nil {
			return nil, fmt.Errorf("cqt: unknown association %q", v.Assoc)
		}
		ps := env.Client.Assocs[v.Assoc]
		out := make([]tuple, len(ps))
		for i, p := range ps {
			out[i] = tuple{data: p.Ends.Clone()}
		}
		return out, nil

	case Select:
		in, err := eval(env, v.In)
		if err != nil {
			return nil, err
		}
		var out []tuple
		th := EvalTheory(env.Catalog)
		for _, t := range in {
			if cond.EvalOn(th, v.Cond, t) {
				out = append(out, t)
			}
		}
		return out, nil

	case Project:
		in, err := eval(env, v.In)
		if err != nil {
			return nil, err
		}
		out := make([]tuple, len(in))
		for i, t := range in {
			nr := make(state.Row, len(v.Cols))
			for _, pc := range v.Cols {
				if pc.Lit != nil {
					if val, ok := pc.Lit.Value(); ok {
						nr[pc.As] = val
					}
					continue
				}
				if val, ok := t.data[pc.Src]; ok {
					nr[pc.As] = val
				}
			}
			out[i] = tuple{types: t.types, data: nr}
		}
		return out, nil

	case Join:
		return evalJoin(env, v)

	case UnionAll:
		var out []tuple
		var cols0 []string
		for i, in := range v.Inputs {
			cs, err := env.Catalog.Cols(in)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				cols0 = cs
			} else if !sameColSet(cols0, cs) {
				return nil, fmt.Errorf("cqt: union inputs have different columns: %v vs %v", cols0, cs)
			}
			ts, err := eval(env, in)
			if err != nil {
				return nil, err
			}
			out = append(out, ts...)
		}
		return out, nil
	}
	return nil, fmt.Errorf("cqt: unknown expression %T", e)
}

// evalTheoryWith wraps the client schema so IS OF conditions inside query
// trees see the real hierarchy.
type evalTheoryWith struct {
	cat *Catalog
}

func (t evalTheoryWith) ConcreteTypes(string) []string { return nil }
func (t evalTheoryWith) IsSubtype(sub, typ string) bool {
	return t.cat.Client.IsSubtype(sub, typ)
}
func (t evalTheoryWith) Domain(string) (cond.Domain, bool) { return cond.Domain{}, false }
func (t evalTheoryWith) Nullable(string) bool              { return true }
func (t evalTheoryWith) HasAttr(string, string) bool       { return true }

// EvalTheory returns the condition theory query evaluation runs under:
// IS OF sees the catalog's real client hierarchy, everything else is free.
// The streaming executor shares it so both evaluation paths agree on
// selection semantics by construction.
func EvalTheory(cat *Catalog) cond.Theory { return evalTheoryWith{cat: cat} }

func sameColSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[string]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	for _, x := range b {
		if !set[x] {
			return false
		}
	}
	return true
}

func evalJoin(env *Env, j Join) ([]tuple, error) {
	lcols, err := env.Catalog.Cols(j.L)
	if err != nil {
		return nil, err
	}
	rcols, err := env.Catalog.Cols(j.R)
	if err != nil {
		return nil, err
	}
	// Shared column names must be equated by the join.
	shared := map[string]bool{}
	for _, lc := range lcols {
		for _, rc := range rcols {
			if lc == rc {
				shared[lc] = true
			}
		}
	}
	for s := range shared {
		ok := false
		for _, p := range j.On {
			if p[0] == s && p[1] == s {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("cqt: join inputs share column %q without equating it", s)
		}
	}

	lt, err := eval(env, j.L)
	if err != nil {
		return nil, err
	}
	rt, err := eval(env, j.R)
	if err != nil {
		return nil, err
	}

	keyOf := func(t tuple, cols []string) (string, bool) {
		var b strings.Builder
		for _, c := range cols {
			v, ok := t.data[c]
			if !ok {
				return "", false // NULL never matches
			}
			b.WriteString(v.String())
			b.WriteByte('\x00')
		}
		return b.String(), true
	}
	lOn := make([]string, len(j.On))
	rOn := make([]string, len(j.On))
	for i, p := range j.On {
		lOn[i], rOn[i] = p[0], p[1]
	}

	index := map[string][]int{}
	for i, t := range rt {
		if k, ok := keyOf(t, rOn); ok {
			index[k] = append(index[k], i)
		}
	}

	merge := func(l, r tuple) (tuple, error) {
		types := map[string]string{}
		for s, ty := range l.types {
			types[s] = ty
		}
		for s, ty := range r.types {
			if prev, dup := types[s]; dup && prev != ty {
				return tuple{}, fmt.Errorf("cqt: join merges conflicting subject types %q/%q", prev, ty)
			}
			types[s] = ty
		}
		data := l.data.Clone()
		for c, v := range r.data {
			if _, exists := data[c]; !exists {
				data[c] = v
			}
		}
		return tuple{types: types, data: data}, nil
	}

	var out []tuple
	rMatched := make([]bool, len(rt))
	for _, l := range lt {
		matched := false
		if k, ok := keyOf(l, lOn); ok {
			for _, ri := range index[k] {
				m, err := merge(l, rt[ri])
				if err != nil {
					return nil, err
				}
				out = append(out, m)
				matched = true
				rMatched[ri] = true
			}
		}
		if !matched && (j.Kind == LeftOuter || j.Kind == FullOuter) {
			// Pad the right side with NULLs: simply keep the left tuple,
			// since absent keys already read as NULL.
			out = append(out, tuple{types: l.types, data: l.data.Clone()})
		}
	}
	if j.Kind == FullOuter {
		for i, r := range rt {
			if !rMatched[i] {
				out = append(out, tuple{types: r.types, data: r.data.Clone()})
			}
		}
	}
	return out, nil
}
