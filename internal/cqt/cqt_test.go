package cqt

import (
	"strings"
	"testing"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/rel"
	"github.com/ormkit/incmap/internal/state"
)

func fixtureCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := edm.NewSchema()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(c.AddType(edm.EntityType{
		Name: "Person",
		Attrs: []edm.Attribute{
			{Name: "Id", Type: cond.KindInt},
			{Name: "Name", Type: cond.KindString, Nullable: true},
		},
		Key: []string{"Id"},
	}))
	must(c.AddType(edm.EntityType{
		Name: "Employee", Base: "Person",
		Attrs: []edm.Attribute{{Name: "Department", Type: cond.KindString, Nullable: true}},
	}))
	must(c.AddType(edm.EntityType{
		Name: "Customer", Base: "Person",
		Attrs: []edm.Attribute{
			{Name: "CredScore", Type: cond.KindInt, Nullable: true},
			{Name: "BillAddr", Type: cond.KindString, Nullable: true},
		},
	}))
	must(c.AddSet(edm.EntitySet{Name: "Persons", Type: "Person"}))
	must(c.AddAssociation(edm.Association{
		Name: "Supports",
		End1: edm.End{Type: "Customer", Mult: edm.Many},
		End2: edm.End{Type: "Employee", Mult: edm.ZeroOne},
	}))

	s := rel.NewSchema()
	must(s.AddTable(rel.Table{
		Name: "HR",
		Cols: []rel.Column{{Name: "Id", Type: cond.KindInt}, {Name: "Name", Type: cond.KindString, Nullable: true}},
		Key:  []string{"Id"},
	}))
	must(s.AddTable(rel.Table{
		Name: "Emp",
		Cols: []rel.Column{{Name: "Id", Type: cond.KindInt}, {Name: "Dept", Type: cond.KindString, Nullable: true}},
		Key:  []string{"Id"},
	}))
	return &Catalog{Client: c, Store: s}
}

func fixtureEnv(t *testing.T) *Env {
	t.Helper()
	cat := fixtureCatalog(t)
	store := state.NewStoreState()
	store.InsertRow("HR", state.Row{"Id": cond.Int(1), "Name": cond.String("ann")})
	store.InsertRow("HR", state.Row{"Id": cond.Int(2), "Name": cond.String("bob")})
	store.InsertRow("Emp", state.Row{"Id": cond.Int(2), "Dept": cond.String("hw")})

	client := state.NewClientState()
	client.Insert("Persons", &state.Entity{Type: "Person", Attrs: state.Row{"Id": cond.Int(1), "Name": cond.String("ann")}})
	client.Insert("Persons", &state.Entity{Type: "Employee", Attrs: state.Row{"Id": cond.Int(2), "Name": cond.String("bob"), "Department": cond.String("hw")}})
	client.Insert("Persons", &state.Entity{Type: "Customer", Attrs: state.Row{"Id": cond.Int(3), "Name": cond.String("cyd"), "CredScore": cond.Int(700)}})
	client.Relate("Supports", state.AssocPair{Ends: state.Row{"Customer_Id": cond.Int(3), "Employee_Id": cond.Int(2)}})

	return &Env{Catalog: cat, Client: client, Store: store}
}

func TestScanTableAndSelect(t *testing.T) {
	env := fixtureEnv(t)
	q := Select{In: ScanTable{Table: "HR"}, Cond: cond.Cmp{Attr: "Id", Op: cond.OpGe, Val: cond.Int(2)}}
	res, err := Eval(env, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0]["Name"].Str() != "bob" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestScanSetWithTypeConditions(t *testing.T) {
	env := fixtureEnv(t)
	q := Project{
		In:   Select{In: ScanSet{Set: "Persons"}, Cond: cond.TypeIs{Type: "Person"}},
		Cols: []ProjCol{Col("Id"), Col("Name")},
	}
	res, err := Eval(env, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("IS OF Person should see derived types, got %d rows", len(res.Rows))
	}
	only := Select{In: ScanSet{Set: "Persons"}, Cond: cond.TypeIs{Type: "Person", Only: true}}
	res, err = Eval(env, only)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("IS OF ONLY Person, got %d rows", len(res.Rows))
	}
}

func TestScanAssoc(t *testing.T) {
	env := fixtureEnv(t)
	res, err := Eval(env, ScanAssoc{Assoc: "Supports"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 2 || len(res.Rows) != 1 {
		t.Fatalf("cols=%v rows=%v", res.Cols, res.Rows)
	}
	if res.Rows[0]["Customer_Id"].IntVal() != 3 {
		t.Fatalf("assoc row = %v", res.Rows[0])
	}
}

func TestProjectWithLiterals(t *testing.T) {
	env := fixtureEnv(t)
	q := Project{
		In: ScanTable{Table: "Emp"},
		Cols: []ProjCol{
			Col("Id"),
			ColAs("Dept", "Department"),
			LitAs(Const(cond.Bool(true)), "from_Emp"),
			LitAs(NullOf(cond.KindString), "BillAddr"),
		},
	}
	res, err := Eval(env, q)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row["Department"].Str() != "hw" || !row["from_Emp"].BoolVal() {
		t.Fatalf("row = %v", row)
	}
	if _, ok := row["BillAddr"]; ok {
		t.Fatalf("BillAddr should be NULL")
	}
}

func personQueryView() *View {
	// Q_Person from §2.2: HR left-outer-join Emp with a provenance flag.
	q := Join{
		Kind: LeftOuter,
		L:    ScanTable{Table: "HR"},
		R: Project{
			In: ScanTable{Table: "Emp"},
			Cols: []ProjCol{
				Col("Id"),
				ColAs("Dept", "Department"),
				LitAs(Const(cond.Bool(true)), "from_Emp"),
			},
		},
		On: [][2]string{{"Id", "Id"}},
	}
	return &View{
		Q: q,
		Cases: []Case{
			{
				When: cond.Cmp{Attr: "from_Emp", Op: cond.OpEq, Val: cond.Bool(true)},
				Type: "Employee",
				Attrs: map[string]string{
					"Id": "Id", "Name": "Name", "Department": "Department",
				},
			},
			{
				When:  cond.True{},
				Type:  "Person",
				Attrs: map[string]string{"Id": "Id", "Name": "Name"},
			},
		},
	}
}

func TestLeftOuterJoinAndConstructor(t *testing.T) {
	env := fixtureEnv(t)
	view := personQueryView()
	ents, err := view.ConstructEntities(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("got %d entities", len(ents))
	}
	byID := map[int64]*state.Entity{}
	for _, e := range ents {
		byID[e.Attrs["Id"].IntVal()] = e
	}
	if byID[1].Type != "Person" || byID[2].Type != "Employee" {
		t.Fatalf("types = %v / %v", byID[1].Type, byID[2].Type)
	}
	if byID[2].Attrs["Department"].Str() != "hw" {
		t.Fatalf("employee attrs = %v", byID[2].Attrs)
	}
}

func TestFullOuterJoin(t *testing.T) {
	env := fixtureEnv(t)
	env.Store.InsertRow("Emp", state.Row{"Id": cond.Int(9), "Dept": cond.String("orphan")})
	q := Join{
		Kind: FullOuter,
		L:    ScanTable{Table: "HR"},
		R: Project{
			In:   ScanTable{Table: "Emp"},
			Cols: []ProjCol{Col("Id"), ColAs("Dept", "Department")},
		},
		On: [][2]string{{"Id", "Id"}},
	}
	res, err := Eval(env, q)
	if err != nil {
		t.Fatal(err)
	}
	// ann (left only), bob (matched), orphan (right only).
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestUnionAll(t *testing.T) {
	env := fixtureEnv(t)
	a := Project{In: ScanTable{Table: "HR"}, Cols: []ProjCol{Col("Id")}}
	b := Project{In: ScanTable{Table: "Emp"}, Cols: []ProjCol{Col("Id")}}
	res, err := Eval(env, UnionAll{Inputs: []Expr{a, b}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Mismatched columns must fail.
	bad := UnionAll{Inputs: []Expr{a, ScanTable{Table: "Emp"}}}
	if _, err := Eval(env, bad); err == nil {
		t.Fatal("union with mismatched columns accepted")
	}
}

func TestJoinSharedColumnGuard(t *testing.T) {
	env := fixtureEnv(t)
	// HR and Emp share only "Id"; joining on nothing must be rejected.
	q := Join{Kind: Inner, L: ScanTable{Table: "HR"}, R: ScanTable{Table: "Emp"}}
	if _, err := Eval(env, q); err == nil {
		t.Fatal("join with unequated shared column accepted")
	}
}

func TestUpdateViewEvaluation(t *testing.T) {
	env := fixtureEnv(t)
	// Q_Emp from §2.2: project employees of the Persons set.
	q := Project{
		In:   Select{In: ScanSet{Set: "Persons"}, Cond: cond.TypeIs{Type: "Employee"}},
		Cols: []ProjCol{Col("Id"), ColAs("Department", "Dept")},
	}
	res, err := Eval(env, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0]["Dept"].Str() != "hw" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSimplifyMergesSelectsAndProjections(t *testing.T) {
	cat := fixtureCatalog(t)
	e := Select{
		In:   Select{In: ScanTable{Table: "HR"}, Cond: cond.NotNull("Name")},
		Cond: cond.Cmp{Attr: "Id", Op: cond.OpGt, Val: cond.Int(0)},
	}
	s := Simplify(cat, e)
	sel, ok := s.(Select)
	if !ok {
		t.Fatalf("got %T", s)
	}
	if _, ok := sel.In.(ScanTable); !ok {
		t.Fatalf("selects not merged: %s", Format(s))
	}

	p := Project{
		In: Project{
			In:   ScanTable{Table: "Emp"},
			Cols: []ProjCol{Col("Id"), ColAs("Dept", "Department")},
		},
		Cols: []ProjCol{Col("Id"), ColAs("Department", "D2")},
	}
	s = Simplify(cat, p)
	pr, ok := s.(Project)
	if !ok {
		t.Fatalf("got %T", s)
	}
	if _, ok := pr.In.(ScanTable); !ok {
		t.Fatalf("projections not composed: %s", Format(s))
	}
	if pr.Cols[1].Src != "Dept" || pr.Cols[1].As != "D2" {
		t.Fatalf("composed cols = %+v", pr.Cols)
	}
}

func TestSimplifyIdentityProjection(t *testing.T) {
	cat := fixtureCatalog(t)
	// Over a bare scan the identity projection must be KEPT: the scanned
	// table's column set can grow under later schema modifications, and a
	// dropped projection would silently widen the view with it.
	p := Project{In: ScanTable{Table: "HR"}, Cols: []ProjCol{Col("Id"), Col("Name")}}
	if _, ok := Simplify(cat, p).(Project); !ok {
		t.Fatalf("identity projection over a scan must be kept, got %s", Format(Simplify(cat, p)))
	}
	// Over an input with pinned columns (an explicit projection below) the
	// identity projection is redundant and is dropped.
	pinned := Project{
		In:   Project{In: ScanTable{Table: "HR"}, Cols: []ProjCol{Col("Id"), Col("Name")}},
		Cols: []ProjCol{Col("Id"), Col("Name")},
	}
	s := Simplify(cat, pinned)
	pr, ok := s.(Project)
	if !ok {
		t.Fatalf("got %T", s)
	}
	if _, ok := pr.In.(ScanTable); !ok {
		t.Fatalf("stacked identity projections not collapsed: %s", Format(s))
	}
}

func TestSimplifyLOJElimination(t *testing.T) {
	cat := fixtureCatalog(t)
	// π_{Id,Name} (HR ⟕ Emp ON Id=Id) = π_{Id,Name}(HR) since Emp is keyed
	// on Id. This is the unfolding simplification used by the paper's
	// Example 7. The surviving projection over the scan is kept (scan
	// columns are not pinned), so the result is π_{Id,Name}(HR).
	j := Join{Kind: LeftOuter, L: ScanTable{Table: "HR"},
		R:  Project{In: ScanTable{Table: "Emp"}, Cols: []ProjCol{Col("Id"), ColAs("Dept", "Department")}},
		On: [][2]string{{"Id", "Id"}}}
	p := Project{In: j, Cols: []ProjCol{Col("Id"), Col("Name")}}
	s := Simplify(cat, p)
	pr, ok := s.(Project)
	if !ok {
		t.Fatalf("LOJ not eliminated: %s", Format(s))
	}
	if _, ok := pr.In.(ScanTable); !ok {
		t.Fatalf("LOJ not eliminated: %s", Format(s))
	}
}

func TestSimplifyPreservesSemantics(t *testing.T) {
	env := fixtureEnv(t)
	view := personQueryView()
	before, err := Eval(env, view.Q)
	if err != nil {
		t.Fatal(err)
	}
	after, err := Eval(env, Simplify(env.Catalog, view.Q))
	if err != nil {
		t.Fatal(err)
	}
	if !state.EqualRows(before.Rows, after.Rows) {
		t.Fatalf("simplification changed semantics:\n%v\nvs\n%v", before.Rows, after.Rows)
	}
}

func TestUnionFlattenAndEmptyElimination(t *testing.T) {
	cat := fixtureCatalog(t)
	u := UnionAll{Inputs: []Expr{
		UnionAll{Inputs: []Expr{ScanTable{Table: "HR"}, ScanTable{Table: "HR"}}},
		Select{In: ScanTable{Table: "HR"}, Cond: cond.False{}},
	}}
	s := Simplify(cat, u)
	flat, ok := s.(UnionAll)
	if !ok {
		t.Fatalf("got %T: %s", s, Format(s))
	}
	if len(flat.Inputs) != 2 {
		t.Fatalf("inputs = %d", len(flat.Inputs))
	}
}

func TestFormatOutput(t *testing.T) {
	view := personQueryView()
	out := FormatView(view)
	for _, want := range []string{"LEFT OUTER JOIN", "true AS from_Emp", "ON Id = Id", "Employee(", "Person("} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted view missing %q:\n%s", want, out)
		}
	}
}

func TestKeyColsTracing(t *testing.T) {
	cat := fixtureCatalog(t)
	p := Project{In: ScanTable{Table: "Emp"}, Cols: []ProjCol{ColAs("Id", "EmpId"), Col("Dept")}}
	key, ok := cat.KeyCols(p)
	if !ok || len(key) != 1 || key[0] != "EmpId" {
		t.Fatalf("KeyCols = %v, %v", key, ok)
	}
	dropped := Project{In: ScanTable{Table: "Emp"}, Cols: []ProjCol{Col("Dept")}}
	if _, ok := cat.KeyCols(dropped); ok {
		t.Fatalf("key should not be traceable through a dropping projection")
	}
}

func TestAssocEndColsSelfAssociation(t *testing.T) {
	c := edm.NewSchema()
	if err := c.AddType(edm.EntityType{Name: "P", Attrs: []edm.Attribute{{Name: "Id", Type: cond.KindInt}}, Key: []string{"Id"}}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddSet(edm.EntitySet{Name: "Ps", Type: "P"}); err != nil {
		t.Fatal(err)
	}
	a := edm.Association{Name: "Knows", End1: edm.End{Type: "P", Mult: edm.Many}, End2: edm.End{Type: "P", Mult: edm.Many}}
	if err := c.AddAssociation(a); err != nil {
		t.Fatal(err)
	}
	e1, e2 := AssocEndCols(c, c.Association("Knows"))
	if e1[0] == e2[0] {
		t.Fatalf("self-association end columns collide: %v %v", e1, e2)
	}
}
