package cqt

import (
	"github.com/ormkit/incmap/internal/cond"
)

// Simplify applies cost-reducing, semantics-preserving rewrites to a query
// tree: merging stacked selections and projections, flattening unions,
// dropping identity projections, and eliminating left-outer joins whose
// right side cannot affect the projected columns. The paper notes (§6) that
// the full compiler relies on such optimizations to turn full outer joins
// into cheaper operators, and that incremental compilation produces the
// cheap forms directly; our ablation benchmark measures the effect.
func Simplify(cat *Catalog, e Expr) Expr {
	for i := 0; i < 8; i++ {
		next, changed := simplify(cat, e)
		e = next
		if !changed {
			break
		}
	}
	return e
}

func simplify(cat *Catalog, e Expr) (Expr, bool) {
	switch v := e.(type) {
	case Select:
		in, ch := simplify(cat, v.In)
		if _, isTrue := v.Cond.(cond.True); isTrue {
			return in, true
		}
		if inner, ok := in.(Select); ok {
			return Select{In: inner.In, Cond: cond.NewAnd(inner.Cond, v.Cond)}, true
		}
		return Select{In: in, Cond: v.Cond}, ch

	case Project:
		in, ch := simplify(cat, v.In)

		// Compose stacked projections.
		if inner, ok := in.(Project); ok {
			srcOf := map[string]ProjCol{}
			for _, pc := range inner.Cols {
				srcOf[pc.As] = pc
			}
			merged := make([]ProjCol, 0, len(v.Cols))
			ok := true
			for _, pc := range v.Cols {
				if pc.Lit != nil {
					merged = append(merged, pc)
					continue
				}
				base, found := srcOf[pc.Src]
				if !found {
					ok = false
					break
				}
				base.As = pc.As
				merged = append(merged, base)
			}
			if ok {
				return Project{In: inner.In, Cols: merged}, true
			}
		}

		// Eliminate a left-outer join whose right side is unused: when every
		// projected source column comes from the left input and the right
		// side is joined on (a superset of) its own key, the join neither
		// filters nor duplicates left rows.
		if j, ok := in.(Join); ok && j.Kind == LeftOuter {
			if lcols, err := cat.Cols(j.L); err == nil {
				lset := map[string]bool{}
				for _, c := range lcols {
					lset[c] = true
				}
				allLeft := true
				for _, pc := range v.Cols {
					if pc.Lit == nil && !lset[pc.Src] {
						allLeft = false
						break
					}
				}
				if allLeft && rightKeyed(cat, j) {
					return simplifyOnce(cat, Project{In: j.L, Cols: v.Cols})
				}
				// Otherwise push the projection into the left side, keeping
				// the join columns; this lets unrelated outer joins nested
				// inside the left input be eliminated recursively (the
				// unfolding simplification behind the paper's Example 7).
				needed := map[string]bool{}
				for _, pc := range v.Cols {
					if pc.Lit == nil && lset[pc.Src] {
						needed[pc.Src] = true
					}
				}
				for _, p := range j.On {
					needed[p[0]] = true
				}
				if len(needed) < len(lcols) {
					keep := make([]ProjCol, 0, len(needed))
					for _, c := range lcols {
						if needed[c] {
							keep = append(keep, Col(c))
						}
					}
					nl, _ := simplify(cat, Project{In: j.L, Cols: keep})
					return simplifyOnce(cat, Project{
						In:   Join{Kind: LeftOuter, L: nl, R: j.R, On: j.On},
						Cols: v.Cols,
					})
				}
			}
		}

		// Push projections through unions so joins nested inside branches
		// can be eliminated.
		if u, ok := in.(UnionAll); ok {
			inputs := make([]Expr, len(u.Inputs))
			for i, b := range u.Inputs {
				inputs[i], _ = simplify(cat, Project{In: b, Cols: v.Cols})
			}
			return UnionAll{Inputs: inputs}, true
		}

		// Drop identity projections — but only over inputs whose column
		// set is fixed by the expression itself. A scan's columns are
		// inherited from the scanned schema object, and a later SMO can
		// widen that object (AddProperty adds attributes to a set's
		// entities, AddEntity adds them for new subtypes the adapted
		// conditions select); an identity projection dropped today would
		// silently widen the view tomorrow.
		if cols, err := cat.Cols(in); err == nil && isIdentityProj(v.Cols, cols) && fixedCols(in) {
			return in, true
		}
		return Project{In: in, Cols: v.Cols}, ch

	case Join:
		l, ch1 := simplify(cat, v.L)
		r, ch2 := simplify(cat, v.R)
		return Join{Kind: v.Kind, L: l, R: r, On: v.On}, ch1 || ch2

	case UnionAll:
		var inputs []Expr
		changed := false
		for _, in := range v.Inputs {
			si, ch := simplify(cat, in)
			changed = changed || ch
			if nested, ok := si.(UnionAll); ok {
				inputs = append(inputs, nested.Inputs...)
				changed = true
				continue
			}
			// Drop inputs that are statically empty.
			if sel, ok := si.(Select); ok {
				if _, isFalse := sel.Cond.(cond.False); isFalse {
					changed = true
					continue
				}
			}
			inputs = append(inputs, si)
		}
		if len(inputs) == 1 {
			return inputs[0], true
		}
		return UnionAll{Inputs: inputs}, changed
	}
	return e, false
}

func simplifyOnce(cat *Catalog, e Expr) (Expr, bool) {
	out, _ := simplify(cat, e)
	return out, true
}

// rightKeyed reports whether the join's right input is matched on a
// superset of its own key, so each left row joins at most one right row.
func rightKeyed(cat *Catalog, j Join) bool {
	key, ok := cat.KeyCols(j.R)
	if !ok {
		return false
	}
	onRight := map[string]bool{}
	for _, p := range j.On {
		onRight[p[1]] = true
	}
	for _, k := range key {
		if !onRight[k] {
			return false
		}
	}
	return true
}

// Metrics summarizes the shape of a query tree, for the comparative study
// of incrementally vs fully compiled views suggested as future work in §6
// of the paper.
type Metrics struct {
	Nodes      int
	Scans      int
	Joins      int
	OuterJoins int
	Unions     int // union branches
}

// Measure computes tree metrics.
func Measure(e Expr) Metrics {
	var m Metrics
	var walk func(Expr)
	walk = func(x Expr) {
		m.Nodes++
		switch v := x.(type) {
		case ScanTable, ScanSet, ScanAssoc:
			m.Scans++
		case Select:
			walk(v.In)
		case Project:
			walk(v.In)
		case Join:
			m.Joins++
			if v.Kind != Inner {
				m.OuterJoins++
			}
			walk(v.L)
			walk(v.R)
		case UnionAll:
			m.Unions += len(v.Inputs)
			for _, in := range v.Inputs {
				walk(in)
			}
		}
	}
	walk(e)
	return m
}

// AnyCond reports whether any selection condition in the tree satisfies
// pred. It lets callers skip MapConds rewrites over unaffected views.
func AnyCond(e Expr, pred func(cond.Expr) bool) bool {
	switch v := e.(type) {
	case Select:
		return pred(v.Cond) || AnyCond(v.In, pred)
	case Project:
		return AnyCond(v.In, pred)
	case Join:
		return AnyCond(v.L, pred) || AnyCond(v.R, pred)
	case UnionAll:
		for _, in := range v.Inputs {
			if AnyCond(in, pred) {
				return true
			}
		}
	}
	return false
}

// MapConds rewrites every selection condition in the tree through f,
// leaving the relational structure intact. The incremental compiler uses it
// to apply the IS OF (ONLY P) and IS OF F adaptations of §3.1.2 of the
// paper to existing update views. Subtrees whose conditions f leaves
// unchanged are returned as-is, so an identity rewrite costs no
// allocations and keeps the original tree shared. (Condition identity is
// decided with ==, which hash-consing in package cond makes both safe and
// structural.)
func MapConds(e Expr, f func(cond.Expr) cond.Expr) Expr {
	out, _ := mapConds(e, f)
	return out
}

func mapConds(e Expr, f func(cond.Expr) cond.Expr) (Expr, bool) {
	switch v := e.(type) {
	case Select:
		in, inCh := mapConds(v.In, f)
		nc := f(v.Cond)
		if !inCh && nc == v.Cond {
			return e, false
		}
		return Select{In: in, Cond: nc}, true
	case Project:
		in, inCh := mapConds(v.In, f)
		if !inCh {
			return e, false
		}
		return Project{In: in, Cols: v.Cols}, true
	case Join:
		l, lCh := mapConds(v.L, f)
		r, rCh := mapConds(v.R, f)
		if !lCh && !rCh {
			return e, false
		}
		return Join{Kind: v.Kind, L: l, R: r, On: v.On}, true
	case UnionAll:
		var out []Expr
		for i, in := range v.Inputs {
			ni, ch := mapConds(in, f)
			if ch && out == nil {
				out = make([]Expr, len(v.Inputs))
				copy(out, v.Inputs[:i])
			}
			if out != nil {
				out[i] = ni
			}
		}
		if out == nil {
			return e, false
		}
		return UnionAll{Inputs: out}, true
	}
	return e, false
}

// fixedCols reports whether the expression's output columns are pinned by
// the expression itself — every path from the root to a leaf crosses an
// explicit projection — rather than inherited from a scanned schema
// object, whose column set can grow under later schema modifications.
func fixedCols(e Expr) bool {
	switch v := e.(type) {
	case Project:
		return true
	case Select:
		return fixedCols(v.In)
	case UnionAll:
		for _, in := range v.Inputs {
			if !fixedCols(in) {
				return false
			}
		}
		return true
	case Join:
		return fixedCols(v.L) && fixedCols(v.R)
	default:
		return false
	}
}

func isIdentityProj(cols []ProjCol, inCols []string) bool {
	if len(cols) != len(inCols) {
		return false
	}
	for i, pc := range cols {
		if pc.Lit != nil || pc.Src != pc.As || pc.As != inCols[i] {
			return false
		}
	}
	return true
}
