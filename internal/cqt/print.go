package cqt

import (
	"fmt"
	"strings"

	"github.com/ormkit/incmap/internal/cond"
)

// Format renders a query tree as indented Entity-SQL-like text, in the
// spirit of Figure 2 of the paper.
func Format(e Expr) string {
	var b strings.Builder
	format(&b, e, 0)
	return b.String()
}

func indent(b *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		b.WriteString("  ")
	}
}

func format(b *strings.Builder, e Expr, depth int) {
	switch v := e.(type) {
	case ScanTable:
		indent(b, depth)
		fmt.Fprintf(b, "%s", v.Table)
	case ScanSet:
		indent(b, depth)
		fmt.Fprintf(b, "%s", v.Set)
	case ScanAssoc:
		indent(b, depth)
		fmt.Fprintf(b, "%s", v.Assoc)
	case Select:
		// Merge SELECT * FROM in WHERE cond.
		indent(b, depth)
		b.WriteString("SELECT * FROM (\n")
		format(b, v.In, depth+1)
		b.WriteString("\n")
		indent(b, depth)
		fmt.Fprintf(b, ") WHERE %s", v.Cond)
	case Project:
		indent(b, depth)
		b.WriteString("SELECT ")
		for i, pc := range v.Cols {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(formatProjCol(pc))
		}
		b.WriteString("\n")
		indent(b, depth)
		if inner, ok := v.In.(Select); ok {
			b.WriteString("FROM (\n")
			format(b, inner.In, depth+1)
			b.WriteString("\n")
			indent(b, depth)
			fmt.Fprintf(b, ") WHERE %s", inner.Cond)
			return
		}
		b.WriteString("FROM (\n")
		format(b, v.In, depth+1)
		b.WriteString("\n")
		indent(b, depth)
		b.WriteString(")")
	case Join:
		indent(b, depth)
		b.WriteString("(\n")
		format(b, v.L, depth+1)
		b.WriteString("\n")
		indent(b, depth)
		fmt.Fprintf(b, ") %s (\n", v.Kind)
		format(b, v.R, depth+1)
		b.WriteString("\n")
		indent(b, depth)
		b.WriteString(") ON ")
		for i, p := range v.On {
			if i > 0 {
				b.WriteString(" AND ")
			}
			fmt.Fprintf(b, "%s = %s", p[0], p[1])
		}
	case UnionAll:
		for i, in := range v.Inputs {
			if i > 0 {
				b.WriteString("\n")
				indent(b, depth)
				b.WriteString("UNION ALL\n")
			}
			indent(b, depth)
			b.WriteString("(\n")
			format(b, in, depth+1)
			b.WriteString("\n")
			indent(b, depth)
			b.WriteString(")")
		}
	default:
		indent(b, depth)
		fmt.Fprintf(b, "?%T", e)
	}
}

func formatProjCol(pc ProjCol) string {
	if pc.Lit != nil {
		if pc.Lit.Null {
			return fmt.Sprintf("CAST(NULL AS %s) AS %s", kindSQL(pc.Lit.Kind), pc.As)
		}
		return fmt.Sprintf("%s AS %s", pc.Lit.Val, pc.As)
	}
	if pc.Src == pc.As {
		return pc.As
	}
	return fmt.Sprintf("%s AS %s", pc.Src, pc.As)
}

func kindSQL(k cond.Kind) string {
	switch k {
	case cond.KindString:
		return "nvarchar"
	case cond.KindInt:
		return "int"
	case cond.KindFloat:
		return "float"
	case cond.KindBool:
		return "bit"
	}
	return "sql_variant"
}

// FormatView renders a (Q | τ) pair.
func FormatView(v *View) string {
	q := Format(v.Q)
	c := v.FormatConstructor()
	if c == "" {
		return q
	}
	return q + "\n| " + strings.ReplaceAll(c, "\n", "\n| ")
}
