// Package cqt implements canonical query trees: the internal representation
// of query and update views in the incremental mapping compiler, analogous
// to Entity Framework's canonical query trees described in §4.1 of
// Bernstein et al. (SIGMOD 2013). A tree is a relational-algebra expression
// over entity sets, association sets and tables, built from project (with
// rename and computed constants), select, inner/left-outer/full-outer join
// and union-all. A view pairs a tree with a constructor that assembles
// typed entities from the tree's relational output (the paper's (Q | τ)
// notation).
package cqt

import (
	"fmt"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/rel"
)

// Expr is a relational query tree node.
type Expr interface {
	isQ()
}

// ScanTable reads all rows of a store table.
type ScanTable struct {
	Table string
}

// ScanSet reads all entities of a client entity set as rows. The output has
// one column per attribute occurring anywhere in the set's hierarchy;
// attributes an entity lacks are NULL. Rows keep their entity type for
// IS OF conditions.
type ScanSet struct {
	Set string
}

// ScanAssoc reads all pairs of a client association set as rows with the
// qualified end-key columns given by AssocEndCols.
type ScanAssoc struct {
	Assoc string
}

// Select filters rows by a condition.
type Select struct {
	In   Expr
	Cond cond.Expr
}

// Literal is a constant projection source, possibly a typed NULL.
type Literal struct {
	Null bool
	Kind cond.Kind
	Val  cond.Value
}

// Value returns the literal's value; ok is false for NULL.
func (l Literal) Value() (cond.Value, bool) {
	if l.Null {
		return cond.Value{}, false
	}
	return l.Val, true
}

// NullOf returns a typed NULL literal.
func NullOf(k cond.Kind) *Literal { return &Literal{Null: true, Kind: k} }

// Const returns a constant literal.
func Const(v cond.Value) *Literal { return &Literal{Kind: v.K, Val: v} }

// ProjCol is one output column of a projection: either a (possibly renamed)
// input column or a literal.
type ProjCol struct {
	As  string
	Src string   // input column when Lit == nil
	Lit *Literal // literal when non-nil
}

// Col projects an input column under its own name.
func Col(name string) ProjCol { return ProjCol{As: name, Src: name} }

// ColAs projects an input column under a new name.
func ColAs(src, as string) ProjCol { return ProjCol{As: as, Src: src} }

// LitAs projects a literal under the given name.
func LitAs(l *Literal, as string) ProjCol { return ProjCol{As: as, Lit: l} }

// Project renames, reorders, drops and computes columns.
type Project struct {
	In   Expr
	Cols []ProjCol
}

// JoinKind distinguishes join flavours.
type JoinKind int

// Join flavours.
const (
	Inner JoinKind = iota
	LeftOuter
	FullOuter
)

// String renders the join kind in SQL.
func (k JoinKind) String() string {
	switch k {
	case Inner:
		return "INNER JOIN"
	case LeftOuter:
		return "LEFT OUTER JOIN"
	case FullOuter:
		return "FULL OUTER JOIN"
	}
	return "JOIN"
}

// Join combines two inputs on column equalities. Columns shared by both
// sides must appear as an equated pair; the merged output carries each
// output column once, coalescing the two sides for outer joins.
type Join struct {
	Kind JoinKind
	L, R Expr
	// On lists [leftCol, rightCol] equality pairs.
	On [][2]string
}

// UnionAll concatenates inputs with identical column sets.
type UnionAll struct {
	Inputs []Expr
}

func (ScanTable) isQ() {}
func (ScanSet) isQ()   {}
func (ScanAssoc) isQ() {}
func (Select) isQ()    {}
func (Project) isQ()   {}
func (Join) isQ()      {}
func (UnionAll) isQ()  {}

// Catalog resolves scan targets to their output columns.
type Catalog struct {
	Client *edm.Schema
	Store  *rel.Schema
}

// AssocEndCols returns the output column names of an association scan:
// the key attributes of each end, qualified by the end's type name (or the
// type name with an end index when both ends have the same type). This
// matches the paper's Customer.Id / Employee.Id convention, with '_' in
// place of '.' so the names stay unqualified for condition reasoning.
func AssocEndCols(s *edm.Schema, a *edm.Association) (end1, end2 []string) {
	b1, b2 := a.End1.Type, a.End2.Type
	if b1 == b2 {
		b1 += "1"
		b2 += "2"
	}
	for _, k := range s.KeyOf(a.End1.Type) {
		end1 = append(end1, b1+"_"+k)
	}
	for _, k := range s.KeyOf(a.End2.Type) {
		end2 = append(end2, b2+"_"+k)
	}
	return end1, end2
}

// SetCols returns the output columns of an entity-set scan: every attribute
// occurring anywhere in the set's hierarchy, in hierarchy declaration
// order, without duplicates.
func SetCols(s *edm.Schema, set *edm.EntitySet) []string {
	var out []string
	seen := map[string]bool{}
	add := func(names []string) {
		for _, n := range names {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	add(s.AttrNames(set.Type))
	for _, d := range s.Descendants(set.Type) {
		add(s.AttrNames(d))
	}
	return out
}

// Cols computes the output column names of an expression.
func (c *Catalog) Cols(e Expr) ([]string, error) {
	switch v := e.(type) {
	case ScanTable:
		t := c.Store.Table(v.Table)
		if t == nil {
			return nil, fmt.Errorf("cqt: unknown table %q", v.Table)
		}
		return t.ColNames(), nil
	case ScanSet:
		set := c.Client.Set(v.Set)
		if set == nil {
			return nil, fmt.Errorf("cqt: unknown entity set %q", v.Set)
		}
		return SetCols(c.Client, set), nil
	case ScanAssoc:
		a := c.Client.Association(v.Assoc)
		if a == nil {
			return nil, fmt.Errorf("cqt: unknown association %q", v.Assoc)
		}
		e1, e2 := AssocEndCols(c.Client, a)
		return append(e1, e2...), nil
	case Select:
		return c.Cols(v.In)
	case Project:
		out := make([]string, len(v.Cols))
		for i, pc := range v.Cols {
			out[i] = pc.As
		}
		return out, nil
	case Join:
		lc, err := c.Cols(v.L)
		if err != nil {
			return nil, err
		}
		rc, err := c.Cols(v.R)
		if err != nil {
			return nil, err
		}
		seen := map[string]bool{}
		var out []string
		for _, n := range lc {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
		for _, n := range rc {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
		return out, nil
	case UnionAll:
		if len(v.Inputs) == 0 {
			return nil, fmt.Errorf("cqt: empty union")
		}
		return c.Cols(v.Inputs[0])
	}
	return nil, fmt.Errorf("cqt: unknown expression %T", e)
}

// KeyCols returns the primary-key output columns of an expression when they
// can be traced through projections and selections to a base scan's key;
// ok is false otherwise. It is used to justify join-elimination rewrites.
func (c *Catalog) KeyCols(e Expr) (key []string, ok bool) {
	switch v := e.(type) {
	case ScanTable:
		t := c.Store.Table(v.Table)
		if t == nil {
			return nil, false
		}
		return t.Key, true
	case ScanSet:
		set := c.Client.Set(v.Set)
		if set == nil {
			return nil, false
		}
		return c.Client.KeyOf(set.Type), true
	case ScanAssoc:
		a := c.Client.Association(v.Assoc)
		if a == nil {
			return nil, false
		}
		e1, e2 := AssocEndCols(c.Client, a)
		// An end with multiplicity at most one is determined by the other
		// end, so the other end's columns key the association set.
		switch {
		case a.End2.Mult != edm.Many:
			return e1, true
		case a.End1.Mult != edm.Many:
			return e2, true
		default:
			return append(append([]string(nil), e1...), e2...), true
		}
	case Select:
		return c.KeyCols(v.In)
	case Project:
		inner, ok := c.KeyCols(v.In)
		if !ok {
			return nil, false
		}
		// Every key column must survive the projection (possibly renamed).
		var out []string
		for _, k := range inner {
			found := ""
			for _, pc := range v.Cols {
				if pc.Lit == nil && pc.Src == k {
					found = pc.As
					break
				}
			}
			if found == "" {
				return nil, false
			}
			out = append(out, found)
		}
		return out, true
	}
	return nil, false
}
