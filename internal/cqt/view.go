package cqt

import (
	"fmt"
	"sort"
	"strings"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/state"
)

// Case is one branch of an entity constructor τ: when the condition over
// the query's output columns holds, construct an entity of the given type,
// reading each attribute from the named output column.
type Case struct {
	When  cond.Expr
	Type  string
	Attrs map[string]string // attribute -> output column
}

// View is a compiled (Q | τ) pair. For query views of entity types, Cases
// is the constructor; the first matching case wins. For update views and
// association query views Cases is nil and the relational output is used
// directly.
type View struct {
	Q     Expr
	Cases []Case
}

// Clone returns a deep copy of the view. Query trees are immutable, so only
// the case slice is copied.
func (v *View) Clone() *View {
	if v == nil {
		return nil
	}
	out := &View{Q: v.Q}
	out.Cases = make([]Case, len(v.Cases))
	for i, c := range v.Cases {
		attrs := make(map[string]string, len(c.Attrs))
		for k, vv := range c.Attrs {
			attrs[k] = vv
		}
		out.Cases[i] = Case{When: c.When, Type: c.Type, Attrs: attrs}
	}
	return out
}

// ConstructEntities evaluates the view and applies its constructor,
// yielding entities.
func (v *View) ConstructEntities(env *Env) ([]*state.Entity, error) {
	res, err := Eval(env, v.Q)
	if err != nil {
		return nil, err
	}
	out := make([]*state.Entity, 0, len(res.Rows))
	for _, row := range res.Rows {
		e, err := applyCases(v.Cases, row)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

func applyCases(cases []Case, row state.Row) (*state.Entity, error) {
	return ConstructEntity(cases, row)
}

// ConstructEntity applies a view constructor τ to one relational row: the
// first matching case builds the entity. A row matching no case is an
// error — every row a query view emits must be constructible.
func ConstructEntity(cases []Case, row state.Row) (*state.Entity, error) {
	if e, ok := ConstructVisible(cases, row); ok {
		return e, nil
	}
	return nil, fmt.Errorf("cqt: no constructor case matched row {%s}", row.Canonical())
}

// ConstructVisible applies a constructor whose case list may have been
// restricted (cross-version reads drop cases for types the old version
// does not know): a row matching no case is invisible, not an error.
func ConstructVisible(cases []Case, row state.Row) (*state.Entity, bool) {
	for _, c := range cases {
		if !cond.EvalOn(cond.FreeTheory, c.When, state.RowInstance{R: row}) {
			continue
		}
		attrs := state.Row{}
		for attr, col := range c.Attrs {
			if val, ok := row[col]; ok {
				attrs[attr] = val
			}
		}
		return &state.Entity{Type: c.Type, Attrs: attrs}, true
	}
	return nil, false
}

// FormatConstructor renders τ in the paper's if/else style.
func (v *View) FormatConstructor() string {
	if len(v.Cases) == 0 {
		return ""
	}
	var b strings.Builder
	for i, c := range v.Cases {
		if i > 0 {
			b.WriteString("\nelse ")
		}
		if _, isTrue := c.When.(cond.True); !isTrue {
			fmt.Fprintf(&b, "if (%s) then ", c.When)
		}
		attrs := make([]string, 0, len(c.Attrs))
		for a := range c.Attrs {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		fmt.Fprintf(&b, "%s(%s)", c.Type, strings.Join(attrs, ", "))
	}
	return b.String()
}
