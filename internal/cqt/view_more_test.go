package cqt

import (
	"strings"
	"testing"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/state"
)

func TestLiteralValue(t *testing.T) {
	if _, ok := NullOf(cond.KindInt).Value(); ok {
		t.Error("NULL literal has a value")
	}
	if v, ok := Const(cond.Int(7)).Value(); !ok || v.IntVal() != 7 {
		t.Error("constant literal value wrong")
	}
}

func TestJoinKindString(t *testing.T) {
	if Inner.String() != "INNER JOIN" || LeftOuter.String() != "LEFT OUTER JOIN" || FullOuter.String() != "FULL OUTER JOIN" {
		t.Error("join kind names wrong")
	}
}

func TestAnyCond(t *testing.T) {
	e := UnionAll{Inputs: []Expr{
		Select{In: ScanTable{Table: "A"}, Cond: cond.TypeIs{Type: "X"}},
		Project{In: Join{
			Kind: Inner,
			L:    ScanTable{Table: "B"},
			R:    Select{In: ScanTable{Table: "C"}, Cond: cond.NotNull("k")},
			On:   nil,
		}, Cols: []ProjCol{Col("k")}},
	}}
	hasType := func(c cond.Expr) bool {
		for _, a := range cond.Atoms(c) {
			if a.Kind == cond.AtomType {
				return true
			}
		}
		return false
	}
	if !AnyCond(e, hasType) {
		t.Error("type atom not found")
	}
	hasAttr := func(c cond.Expr) bool {
		for _, a := range cond.Atoms(c) {
			if a.Attr == "k" {
				return true
			}
		}
		return false
	}
	if !AnyCond(e, hasAttr) {
		t.Error("attribute atom not found")
	}
	if AnyCond(e, func(cond.Expr) bool { return false }) {
		t.Error("false predicate matched")
	}
}

func TestMapCondsRewrites(t *testing.T) {
	e := Join{
		Kind: LeftOuter,
		L:    Select{In: ScanTable{Table: "A"}, Cond: cond.TypeIs{Type: "Old"}},
		R:    Select{In: ScanTable{Table: "B"}, Cond: cond.True{}},
		On:   nil,
	}
	out := MapConds(e, func(c cond.Expr) cond.Expr {
		return cond.MapAtoms(c, func(x cond.Expr) cond.Expr {
			if ti, ok := x.(cond.TypeIs); ok && ti.Type == "Old" {
				ti.Type = "New"
				return ti
			}
			return x
		})
	})
	j := out.(Join)
	sel := j.L.(Select)
	if ti, ok := sel.Cond.(cond.TypeIs); !ok || ti.Type != "New" {
		t.Fatalf("condition not rewritten: %v", sel.Cond)
	}
}

func TestFormatConstructorMultiCase(t *testing.T) {
	v := &View{
		Q: ScanTable{Table: "T"},
		Cases: []Case{
			{When: cond.Cmp{Attr: "f", Op: cond.OpEq, Val: cond.Bool(true)}, Type: "Sub", Attrs: map[string]string{"a": "a", "b": "b"}},
			{When: cond.True{}, Type: "Base", Attrs: map[string]string{"a": "a"}},
		},
	}
	got := v.FormatConstructor()
	if !strings.Contains(got, "if (f = true) then Sub(a, b)") {
		t.Errorf("constructor format: %q", got)
	}
	if !strings.Contains(got, "else Base(a)") {
		t.Errorf("else branch missing: %q", got)
	}
}

func TestConstructorNoMatchErrors(t *testing.T) {
	_, err := applyCases([]Case{
		{When: cond.False{}, Type: "X", Attrs: nil},
	}, state.Row{"a": cond.Int(1)})
	if err == nil {
		t.Fatal("unmatched row accepted")
	}
}

func TestEvalErrorsOnUnknownTargets(t *testing.T) {
	cat := fixtureCatalog(t)
	env := &Env{Catalog: cat, Store: state.NewStoreState(), Client: state.NewClientState()}
	if _, err := Eval(env, ScanTable{Table: "Nope"}); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := Eval(env, ScanSet{Set: "Nope"}); err == nil {
		t.Error("unknown set accepted")
	}
	if _, err := Eval(env, ScanAssoc{Assoc: "Nope"}); err == nil {
		t.Error("unknown association accepted")
	}
	if _, err := Eval(env, Project{In: ScanTable{Table: "HR"}, Cols: []ProjCol{Col("Ghost")}}); err != nil {
		// Projecting an absent column yields NULL rather than an error
		// (absent map keys are NULL); ensure it does not crash.
		t.Errorf("projection of absent column errored: %v", err)
	}
}

func TestEvalWithoutStateErrors(t *testing.T) {
	cat := fixtureCatalog(t)
	if _, err := Eval(&Env{Catalog: cat}, ScanTable{Table: "HR"}); err == nil {
		t.Error("table scan without store accepted")
	}
	if _, err := Eval(&Env{Catalog: cat}, ScanSet{Set: "Persons"}); err == nil {
		t.Error("set scan without client accepted")
	}
}

func TestSimplifyProjectionPushdownThroughUnion(t *testing.T) {
	cat := fixtureCatalog(t)
	u := UnionAll{Inputs: []Expr{
		Project{In: ScanTable{Table: "HR"}, Cols: []ProjCol{Col("Id"), Col("Name")}},
		Project{In: ScanTable{Table: "Emp"}, Cols: []ProjCol{Col("Id"), ColAs("Dept", "Name")}},
	}}
	p := Project{In: u, Cols: []ProjCol{Col("Id")}}
	s := Simplify(cat, p)
	su, ok := s.(UnionAll)
	if !ok {
		t.Fatalf("projection not pushed through union: %T", s)
	}
	for _, in := range su.Inputs {
		cols, err := cat.Cols(in)
		if err != nil {
			t.Fatal(err)
		}
		if len(cols) != 1 || cols[0] != "Id" {
			t.Fatalf("branch columns = %v", cols)
		}
	}
}
