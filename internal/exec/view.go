package exec

import (
	"context"

	"github.com/ormkit/incmap/internal/cqt"
	"github.com/ormkit/incmap/internal/obsv"
	"github.com/ormkit/incmap/internal/state"
)

// ViewMode selects how a streamed constructor treats rows matching no
// case.
type ViewMode int

const (
	// Strict errors on a row no constructor case matches — the contract
	// for same-version query views, where every emitted row must be
	// constructible.
	Strict ViewMode = iota
	// Visible skips unmatched rows — the contract for cross-version reads,
	// whose case lists were restricted to the types the reading version
	// knows.
	Visible
)

// EntityIter streams constructed entities from a compiled query view.
// The same batch-ownership contract as Iterator applies: an entity batch
// is valid until the next Next or Close.
type EntityIter struct {
	in     Iterator
	cases  []cqt.Case
	mode   ViewMode
	closed bool
	err    error
	buf    []*state.Entity
	made   int64
}

// OpenView opens a streaming evaluation of a query view and applies its
// constructor τ row-by-row. Views without cases (update views,
// association query views) cannot stream entities; use Open directly.
func OpenView(ctx context.Context, env *Env, v *cqt.View, mode ViewMode, opts Options) (*EntityIter, error) {
	in, err := Open(ctx, env, v.Q, opts)
	if err != nil {
		return nil, err
	}
	return &EntityIter{in: in, cases: v.Cases, mode: mode}, nil
}

// Next returns the next batch of constructed entities.
func (e *EntityIter) Next() ([]*state.Entity, bool, error) {
	if e.closed {
		return nil, false, nil
	}
	if e.err != nil {
		return nil, false, e.err
	}
	for {
		batch, ok, err := e.in.Next()
		if err != nil {
			e.err = err
			return nil, false, err
		}
		if !ok {
			return nil, false, nil
		}
		e.buf = e.buf[:0]
		for _, t := range batch {
			if e.mode == Visible {
				if ent, vis := cqt.ConstructVisible(e.cases, t.Data); vis {
					e.buf = append(e.buf, ent)
				}
				continue
			}
			ent, err := cqt.ConstructEntity(e.cases, t.Data)
			if err != nil {
				e.err = err
				return nil, false, err
			}
			e.buf = append(e.buf, ent)
		}
		if len(e.buf) == 0 {
			continue
		}
		e.made += int64(len(e.buf))
		return e.buf, true, nil
	}
}

// Close releases the underlying iterator tree. Idempotent.
func (e *EntityIter) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	if e.made > 0 {
		obsv.Add(obsv.MExecConstructed, e.made)
	}
	e.buf = nil
	return e.in.Close()
}

// Collect drains an iterator into a materialized result. It exists for
// tests and differential comparison; production readers should consume
// batches as they stream.
func Collect(it Iterator) (*cqt.Result, error) {
	defer it.Close()
	res := &cqt.Result{Cols: it.Cols()}
	for {
		batch, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return res, nil
		}
		for _, t := range batch {
			res.Rows = append(res.Rows, t.Data)
		}
	}
}

// CollectEntities drains an entity iterator.
func CollectEntities(it *EntityIter) ([]*state.Entity, error) {
	defer it.Close()
	var out []*state.Entity
	for {
		batch, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, batch...)
	}
}
