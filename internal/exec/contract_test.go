package exec_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"github.com/ormkit/incmap/internal/cqt"
	"github.com/ormkit/incmap/internal/exec"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/state"
	"github.com/ormkit/incmap/internal/workload"
)

// Iterator-contract property tests: every operator shape the compiler
// emits must survive early Close, double Close, empty inputs, and rows
// straddling batch boundaries; and a cancelled context must kill a scan
// mid-stream without leaking goroutines.

// allViewExprs gathers one expression per compiled view of a workload —
// between them they cover scan, select, project, join (incl. outer) and
// union-all shapes.
func allViewExprs(t *testing.T, m *frag.Mapping, v *frag.Views) []cqt.Expr {
	t.Helper()
	var out []cqt.Expr
	for _, view := range v.Query {
		out = append(out, view.Q)
	}
	for _, view := range v.Update {
		out = append(out, view.Q)
	}
	for _, view := range v.Assoc {
		out = append(out, view.Q)
	}
	if len(out) == 0 {
		t.Fatal("workload compiled no views")
	}
	return out
}

func contractWorkloads(t *testing.T) []struct {
	name string
	m    *frag.Mapping
} {
	t.Helper()
	return []struct {
		name string
		m    *frag.Mapping
	}{
		{"chain-3", workload.Chain(3)},
		{"hubrim-tpt", workload.HubRim(workload.HubRimOptions{N: 2, M: 1})},
		{"paper-full", workload.PaperFull()},
	}
}

func TestIteratorEarlyAndDoubleClose(t *testing.T) {
	for _, wl := range contractWorkloads(t) {
		t.Run(wl.name, func(t *testing.T) {
			v, cs, ss := compileWL(t, wl.m, 7)
			env := &exec.Env{Catalog: wl.m.Catalog(), Store: exec.RingFromState(ss, 2), Client: cs}
			for _, q := range allViewExprs(t, wl.m, v) {
				// Close without ever pulling.
				it, err := exec.Open(context.Background(), env, q, exec.Options{BatchSize: 2})
				if err != nil {
					t.Fatalf("open: %v", err)
				}
				if err := it.Close(); err != nil {
					t.Fatalf("close before first pull: %v", err)
				}
				if err := it.Close(); err != nil {
					t.Fatalf("double close: %v", err)
				}
				if batch, ok, err := it.Next(); batch != nil || ok || err != nil {
					t.Fatalf("Next after Close = (%v, %v, %v), want (nil, false, nil)", batch, ok, err)
				}

				// Close mid-stream, after the first batch.
				it, err = exec.Open(context.Background(), env, q, exec.Options{BatchSize: 1})
				if err != nil {
					t.Fatalf("open: %v", err)
				}
				_, _, _ = it.Next()
				if err := it.Close(); err != nil {
					t.Fatalf("close mid-stream: %v", err)
				}
				if err := it.Close(); err != nil {
					t.Fatalf("double close mid-stream: %v", err)
				}
			}
		})
	}
}

func TestIteratorEmptyInputs(t *testing.T) {
	for _, wl := range contractWorkloads(t) {
		t.Run(wl.name, func(t *testing.T) {
			ctx := context.Background()
			v, _, _ := compileWL(t, wl.m, 7)
			// Empty store and empty client: every view must stream zero rows
			// without erroring (the executor treats unknown/empty tables as
			// empty scans).
			env := &exec.Env{Catalog: wl.m.Catalog(), Store: exec.NewRingStore(0), Client: state.NewClientState()}
			for _, q := range allViewExprs(t, wl.m, v) {
				it, err := exec.Open(ctx, env, q, exec.Options{BatchSize: 4})
				if err != nil {
					t.Fatalf("open over empty inputs: %v", err)
				}
				res, err := exec.Collect(it)
				if err != nil {
					t.Fatalf("collect over empty inputs: %v", err)
				}
				if len(res.Rows) != 0 {
					t.Fatalf("empty inputs yielded %d rows", len(res.Rows))
				}
			}
		})
	}
}

// TestIteratorBatchStraddle runs every view at batch sizes that force
// rows to straddle segment and batch boundaries (segment cap 2, batches
// 1/2/5) and checks the multiset is identical to the one-shot result.
func TestIteratorBatchStraddle(t *testing.T) {
	for _, wl := range contractWorkloads(t) {
		t.Run(wl.name, func(t *testing.T) {
			ctx := context.Background()
			v, cs, ss := compileWL(t, wl.m, 11)
			env := &exec.Env{Catalog: wl.m.Catalog(), Store: exec.RingFromState(ss, 2), Client: cs}
			for _, q := range allViewExprs(t, wl.m, v) {
				baseIt, err := exec.Open(ctx, env, q, exec.Options{})
				if err != nil {
					t.Fatalf("open: %v", err)
				}
				base, err := exec.Collect(baseIt)
				if err != nil {
					t.Fatalf("collect: %v", err)
				}
				want := canonicalRows(base.Rows)
				for _, batch := range []int{1, 2, 5} {
					it, err := exec.Open(ctx, env, q, exec.Options{BatchSize: batch})
					if err != nil {
						t.Fatalf("open batch=%d: %v", batch, err)
					}
					got, err := exec.Collect(it)
					if err != nil {
						t.Fatalf("collect batch=%d: %v", batch, err)
					}
					equalMultisets(t, "batch straddle", want, canonicalRows(got.Rows))
				}
			}
		})
	}
}

// TestCancellationSoak cancels contexts mid-scan over and over and
// verifies no goroutines leak: the executor is pure-pull (no operator
// goroutines), so the count must return to the baseline.
func TestCancellationSoak(t *testing.T) {
	m := workload.Chain(3)
	v, cs, ss := compileWL(t, m, 13)
	env := &exec.Env{Catalog: m.Catalog(), Store: exec.RingFromState(ss, 2), Client: cs}
	exprs := allViewExprs(t, m, v)

	before := runtime.NumGoroutine()
	for round := 0; round < 50; round++ {
		for _, q := range exprs {
			ctx, cancel := context.WithCancel(context.Background())
			it, err := exec.Open(ctx, env, q, exec.Options{BatchSize: 1})
			if err != nil {
				cancel()
				t.Fatalf("open: %v", err)
			}
			_, _, _ = it.Next() // first batch may succeed
			cancel()
			// After cancellation, a table scan must surface the context
			// error (client scans may finish if already exhausted); either
			// way the tree must close cleanly.
			_, _, err = it.Next()
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("post-cancel Next returned %v, want context.Canceled in the chain", err)
			}
			if cerr := it.Close(); cerr != nil {
				t.Fatalf("close after cancel: %v", cerr)
			}
			if _, ok, _ := it.Next(); ok {
				t.Fatal("iterator yielded rows after Close")
			}
		}
	}
	// Give any stray goroutines time to exit before comparing counts.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutine leak: %d before cancellation soak, %d after", before, after)
	}
}

// TestCancelledScanIsTypedError pins the error shape: a context
// cancellation inside a table scan surfaces as *exec.OpError wrapping
// context.Canceled.
func TestCancelledScanIsTypedError(t *testing.T) {
	m := workload.Chain(3)
	_, cs, ss := compileWL(t, m, 13)
	env := &exec.Env{Catalog: m.Catalog(), Store: exec.RingFromState(ss, 1), Client: cs}

	// Find a table with rows so the scan has something to cancel over.
	var table string
	for _, tn := range env.Store.Tables() {
		table = tn
		break
	}
	if table == "" {
		t.Fatal("materialized store is empty")
	}
	ctx, cancel := context.WithCancel(context.Background())
	it, err := exec.Open(ctx, env, cqt.ScanTable{Table: table}, exec.Options{BatchSize: 1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer it.Close()
	cancel()
	_, _, err = it.Next()
	var oe *exec.OpError
	if !errors.As(err, &oe) {
		t.Fatalf("cancelled scan returned %T (%v), want *exec.OpError", err, err)
	}
	if oe.Op != "scan" || oe.Target != table {
		t.Fatalf("OpError = {Op:%q Target:%q}, want {scan %s}", oe.Op, oe.Target, table)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("OpError does not wrap context.Canceled: %v", err)
	}
	// The error is sticky.
	_, _, err2 := it.Next()
	if !errors.Is(err2, context.Canceled) {
		t.Fatalf("second Next after failure = %v, want the sticky error", err2)
	}
}
