package exec_test

import (
	"context"
	"errors"
	"testing"

	"github.com/ormkit/incmap/internal/exec"
	"github.com/ormkit/incmap/internal/faultinject"
	"github.com/ormkit/incmap/internal/state"
	"github.com/ormkit/incmap/internal/workload"
)

// TestScanFaultMidStream arms the exec.scan fault site to fail the Nth
// scan batch and verifies the failure contract: the iterator surfaces a
// typed *exec.OpError wrapping the injected error, the error is sticky,
// every operator releases cleanly, and the store underneath is byte-for-
// byte intact afterwards.
func TestScanFaultMidStream(t *testing.T) {
	m := workload.Chain(4)
	v, _, ss := compileWL(t, m, 19)
	ring := exec.RingFromState(ss, 2)
	wantSnap, err := ring.Snapshot()
	if err != nil {
		t.Fatalf("snapshot before fault: %v", err)
	}

	for _, nth := range []int64{1, 2, 3} {
		deactivate := faultinject.Activate(faultinject.Plan{Rules: []faultinject.Rule{
			{Site: faultinject.SiteExecScan, Kind: faultinject.KindError, Nth: nth},
		}})

		env := &exec.Env{Catalog: m.Catalog(), Store: ring}
		var ty string
		for qt := range v.Query {
			ty = qt
			break
		}
		it, err := exec.OpenView(context.Background(), env, v.Query[ty], exec.Strict, exec.Options{BatchSize: 1})
		if err != nil {
			deactivate()
			t.Fatalf("open (nth=%d): %v", nth, err)
		}
		var streamErr error
		for {
			_, ok, err := it.Next()
			if err != nil {
				streamErr = err
				break
			}
			if !ok {
				break
			}
		}
		if streamErr == nil {
			deactivate()
			t.Fatalf("nth=%d: stream finished without surfacing the injected fault", nth)
		}
		var oe *exec.OpError
		if !errors.As(streamErr, &oe) {
			deactivate()
			t.Fatalf("nth=%d: fault surfaced as %T (%v), want *exec.OpError", nth, streamErr, streamErr)
		}
		if oe.Op != "scan" || oe.Target == "" {
			deactivate()
			t.Fatalf("nth=%d: OpError = {Op:%q Target:%q}, want a scan of a named table", nth, oe.Op, oe.Target)
		}
		var ie *faultinject.InjectedError
		if !errors.As(streamErr, &ie) {
			deactivate()
			t.Fatalf("nth=%d: OpError does not wrap the injected error: %v", nth, streamErr)
		}
		// Sticky and closeable.
		if _, ok, err2 := it.Next(); ok || err2 == nil {
			deactivate()
			t.Fatalf("nth=%d: Next after fault = (ok=%v, err=%v), want the sticky error", nth, ok, err2)
		}
		if err := it.Close(); err != nil {
			deactivate()
			t.Fatalf("nth=%d: close after fault: %v", nth, err)
		}
		if fired := faultinject.Fired(); fired == 0 {
			deactivate()
			t.Fatalf("nth=%d: fault plan never fired", nth)
		}
		deactivate()

		// The store survived untouched: same tables, same rows.
		gotSnap, err := ring.Snapshot()
		if err != nil {
			t.Fatalf("snapshot after fault: %v", err)
		}
		if d := state.DiffStore(wantSnap, gotSnap); d != "" {
			t.Fatalf("nth=%d: faulted scan corrupted the store:\n%s", nth, d)
		}
	}
}

// TestScanFaultEveryDoesNotWedgeClose arms a fault on every scan batch
// and verifies a whole-view stream still opens and releases cleanly.
func TestScanFaultEveryDoesNotWedgeClose(t *testing.T) {
	m := workload.Chain(3)
	v, _, ss := compileWL(t, m, 23)
	deactivate := faultinject.Activate(faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SiteExecScan, Kind: faultinject.KindError, Nth: 1, Every: 1},
	}})
	defer deactivate()

	env := &exec.Env{Catalog: m.Catalog(), Store: exec.RingFromState(ss, 2)}
	for ty, view := range v.Query {
		it, err := exec.OpenView(context.Background(), env, view, exec.Strict, exec.Options{BatchSize: 1})
		if err != nil {
			t.Fatalf("open %s: %v", ty, err)
		}
		_, _, err = it.Next()
		if err == nil {
			// Views over client-only scans have no table scan to fault.
			_ = it.Close()
			continue
		}
		var oe *exec.OpError
		if !errors.As(err, &oe) {
			t.Fatalf("%s: first pull returned %T, want *exec.OpError", ty, err)
		}
		if cerr := it.Close(); cerr != nil {
			t.Fatalf("%s: close after every-batch faults: %v", ty, cerr)
		}
	}
}
