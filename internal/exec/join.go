package exec

import (
	"context"
	"fmt"
	"strings"

	"github.com/ormkit/incmap/internal/cqt"
	"github.com/ormkit/incmap/internal/obsv"
)

// joinIter is a streaming hash join with the same semantics as the
// materializing evaluator: the right input is the build side (drained
// fully into a hash index on first pull), the left input streams through
// as probe. Tuples with a NULL join key never match; merging keeps the
// left tuple's values on column collision and errors on conflicting
// subject types; LeftOuter/FullOuter emit unmatched probe tuples as-is
// (absent columns read as NULL); FullOuter additionally emits unmatched
// build tuples once the probe side is exhausted. Only the build side is
// held in memory, and crossing the spill threshold is counted.
type joinIter struct {
	opBase
	l, r Iterator
	kind cqt.JoinKind
	lOn  []string
	rOn  []string

	spillAt int
	built   bool
	build   []Tuple
	index   map[string][]int
	matched []bool

	out []Tuple

	// drain walks unmatched build tuples after probe exhaustion (FullOuter).
	draining bool
	drainAt  int
}

func openJoin(ctx context.Context, env *Env, j cqt.Join, cols []string, opts Options, parent *obsv.Span) (Iterator, error) {
	lcols, err := env.Catalog.Cols(j.L)
	if err != nil {
		return nil, err
	}
	rcols, err := env.Catalog.Cols(j.R)
	if err != nil {
		return nil, err
	}
	// Shared column names must be equated by the join (same check as the
	// materializing evaluator, made at open time here).
	shared := map[string]bool{}
	for _, lc := range lcols {
		for _, rc := range rcols {
			if lc == rc {
				shared[lc] = true
			}
		}
	}
	for s := range shared {
		ok := false
		for _, p := range j.On {
			if p[0] == s && p[1] == s {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("cqt: join inputs share column %q without equating it", s)
		}
	}

	l, err := open(ctx, env, j.L, opts, parent)
	if err != nil {
		return nil, err
	}
	r, err := open(ctx, env, j.R, opts, parent)
	if err != nil {
		_ = l.Close()
		return nil, err
	}
	lOn := make([]string, len(j.On))
	rOn := make([]string, len(j.On))
	for i, p := range j.On {
		lOn[i], rOn[i] = p[0], p[1]
	}
	return &joinIter{
		opBase: opBase{cols: cols, sp: parent.Child("exec.join", obsv.String("kind", joinKindName(j.Kind)))},
		l:      l, r: r, kind: j.Kind,
		lOn: lOn, rOn: rOn,
		spillAt: opts.spill(),
	}, nil
}

func joinKindName(k cqt.JoinKind) string {
	switch k {
	case cqt.LeftOuter:
		return "left-outer"
	case cqt.FullOuter:
		return "full-outer"
	}
	return "inner"
}

// joinKey renders the tuple's join-key columns; ok=false when any key
// column is NULL (NULL never matches).
func joinKey(t Tuple, cols []string) (string, bool) {
	var b strings.Builder
	for _, c := range cols {
		v, ok := t.Data[c]
		if !ok {
			return "", false
		}
		b.WriteString(v.String())
		b.WriteByte('\x00')
	}
	return b.String(), true
}

// buildIndex drains the build (right) input into the hash index. Build
// tuples outlive their source batches, so their structs are copied out.
func (j *joinIter) buildIndex() error {
	j.index = map[string][]int{}
	spilled := false
	for {
		batch, ok, err := j.r.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		for _, t := range batch {
			i := len(j.build)
			j.build = append(j.build, t)
			if k, hasKey := joinKey(t, j.rOn); hasKey {
				j.index[k] = append(j.index[k], i)
			}
			if !spilled && len(j.build) > j.spillAt {
				spilled = true
				obsv.Add(obsv.MExecSpills, 1)
				j.sp.Annotate(obsv.String("spill", "build"))
			}
		}
	}
	j.matched = make([]bool, len(j.build))
	j.built = true
	obsv.Add(obsv.MExecJoinBuildRows, int64(len(j.build)))
	j.sp.Annotate(obsv.String("build_rows", fmt.Sprint(len(j.build))))
	// The build input is exhausted; release it now so a long probe phase
	// does not pin its resources.
	return j.r.Close()
}

func (j *joinIter) merge(l, r Tuple) (Tuple, error) {
	types := map[string]string{}
	for s, ty := range l.Types {
		types[s] = ty
	}
	for s, ty := range r.Types {
		if prev, dup := types[s]; dup && prev != ty {
			return Tuple{}, fmt.Errorf("cqt: join merges conflicting subject types %q/%q", prev, ty)
		}
		types[s] = ty
	}
	data := l.Data.Clone()
	for c, v := range r.Data {
		if _, exists := data[c]; !exists {
			data[c] = v
		}
	}
	return Tuple{Types: types, Data: data}, nil
}

func (j *joinIter) Next() ([]Tuple, bool, error) {
	if t, ok, err, handled := j.gate(); handled {
		return t, ok, err
	}
	if !j.built {
		if err := j.buildIndex(); err != nil {
			return j.fail(err)
		}
	}
	for !j.draining {
		batch, ok, err := j.l.Next()
		if err != nil {
			return j.fail(err)
		}
		if !ok {
			if j.kind == cqt.FullOuter {
				j.draining = true
				break
			}
			return nil, false, nil
		}
		j.out = j.out[:0]
		for _, l := range batch {
			matchedAny := false
			if k, hasKey := joinKey(l, j.lOn); hasKey {
				for _, ri := range j.index[k] {
					m, err := j.merge(l, j.build[ri])
					if err != nil {
						return j.fail(err)
					}
					j.out = append(j.out, m)
					matchedAny = true
					j.matched[ri] = true
				}
			}
			if !matchedAny && (j.kind == cqt.LeftOuter || j.kind == cqt.FullOuter) {
				// Pad the build side with NULLs: keep the probe tuple,
				// since absent keys already read as NULL. Cloned because
				// the batch's row maps are only borrowed.
				j.out = append(j.out, Tuple{Types: l.Types, Data: l.Data.Clone()})
			}
		}
		if len(j.out) == 0 {
			continue
		}
		j.emit(len(j.out))
		return j.out, true, nil
	}
	// FullOuter tail: unmatched build tuples.
	j.out = j.out[:0]
	for j.drainAt < len(j.build) && len(j.out) < DefaultBatchSize {
		i := j.drainAt
		j.drainAt++
		if j.matched[i] {
			continue
		}
		r := j.build[i]
		j.out = append(j.out, Tuple{Types: r.Types, Data: r.Data.Clone()})
	}
	if len(j.out) == 0 {
		return nil, false, nil
	}
	j.emit(len(j.out))
	return j.out, true, nil
}

func (j *joinIter) Close() error {
	if j.closed {
		return nil
	}
	j.closed = true
	errL := j.l.Close()
	errR := j.r.Close() // idempotent if build already closed it
	j.build, j.index, j.matched, j.out = nil, nil, nil, nil
	j.finish()
	if errL != nil {
		return errL
	}
	return errR
}
