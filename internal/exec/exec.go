package exec

import (
	"context"
	"fmt"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/cqt"
	"github.com/ormkit/incmap/internal/faultinject"
	"github.com/ormkit/incmap/internal/obsv"
	"github.com/ormkit/incmap/internal/state"
)

// DefaultBatchSize is the rows-per-batch default when Options leaves
// BatchSize unset.
const DefaultBatchSize = 1024

// DefaultSpillThreshold is the held-row count above which a blocking
// operator (a hash-join build side) reports memory pressure through the
// exec.spills counter. Rows stay in memory either way.
const DefaultSpillThreshold = 1 << 16

// Options tunes one executor run.
type Options struct {
	// BatchSize caps the rows per pulled batch (<=0: DefaultBatchSize).
	BatchSize int
	// SpillThreshold is the held-row count past which a blocking operator
	// counts a spill event (<=0: DefaultSpillThreshold).
	SpillThreshold int
	// Tracer overrides the process-wide tracer for executor spans; nil
	// resolves obsv's default (and tracing stays free when none is set).
	Tracer *obsv.Tracer
}

func (o Options) batch() int {
	if o.BatchSize <= 0 {
		return DefaultBatchSize
	}
	return o.BatchSize
}

func (o Options) spill() int {
	if o.SpillThreshold <= 0 {
		return DefaultSpillThreshold
	}
	return o.SpillThreshold
}

// Env supplies the data a streaming evaluation runs over: query views
// scan Store, update views scan Client. A nil Store or Client fails the
// corresponding scan at open time, like the materializing evaluator.
type Env struct {
	Catalog *cqt.Catalog
	Store   TableStore
	Client  *state.ClientState
}

// Tuple is one streamed row: column values plus the concrete entity
// types of the subjects that produced it (for IS OF conditions). Tuples
// implement cond.Instance so selections evaluate directly on them. Data
// maps are read-only once emitted.
type Tuple struct {
	Types map[string]string
	Data  state.Row
}

// InstanceType implements cond.Instance.
func (t Tuple) InstanceType(subject string) string { return t.Types[subject] }

// Lookup implements cond.Instance.
func (t Tuple) Lookup(attr string) (cond.Value, bool) {
	v, ok := t.Data[attr]
	return v, ok
}

// Iterator is a batched pull iterator over tuples: the executor's
// operator interface. The contract every operator honours (and the
// contract tests pin):
//
//   - Next returns (batch, true, nil) while tuples remain; the batch is
//     valid only until the next Next or Close call.
//   - Next returns (nil, false, nil) once exhausted, and keeps doing so.
//   - A non-nil error ends the stream; the error is sticky.
//   - Close is idempotent, releases the whole subtree, and may be called
//     at any point — before exhaustion, twice, or never having pulled.
//   - After Close, Next returns (nil, false, nil).
type Iterator interface {
	Next() ([]Tuple, bool, error)
	Close() error
	// Cols returns the stream's output column names.
	Cols() []string
}

// OpError is the typed error a streaming operator surfaces when its data
// source fails mid-stream (an injected scan fault, a cancelled context,
// a store error). It identifies the operator and scan target so callers
// can tell an executor fault from a view-compilation bug.
type OpError struct {
	Op     string // "scan", "join", ...
	Target string // table / set / association being read
	Err    error
}

// Error implements error.
func (e *OpError) Error() string {
	return fmt.Sprintf("exec: %s of %s: %v", e.Op, e.Target, e.Err)
}

// Unwrap implements errors.Unwrap.
func (e *OpError) Unwrap() error { return e.Err }

// Open compiles a cqt expression into a streaming iterator tree over the
// environment. Catalog validation (unknown scans, unequated shared join
// columns, ragged unions) happens here, before any row moves; the
// returned iterator is positioned before the first batch. The caller
// must Close it (Close is safe to call more than once).
func Open(ctx context.Context, env *Env, e cqt.Expr, opts Options) (Iterator, error) {
	if _, err := env.Catalog.Cols(e); err != nil {
		return nil, err
	}
	tr := opts.Tracer
	if tr == nil {
		tr = obsv.Default()
	}
	sp := tr.SpanCtx(ctx, "exec", obsv.String("root", opName(e)))
	obsv.Add(obsv.MExecOpens, 1)
	it, err := open(ctx, env, e, opts, sp)
	if err != nil {
		sp.EndErr(err)
		return nil, err
	}
	return &rootIter{child: it, sp: sp}, nil
}

func opName(e cqt.Expr) string {
	switch e.(type) {
	case cqt.ScanTable:
		return "scan-table"
	case cqt.ScanSet:
		return "scan-set"
	case cqt.ScanAssoc:
		return "scan-assoc"
	case cqt.Select:
		return "select"
	case cqt.Project:
		return "project"
	case cqt.Join:
		return "join"
	case cqt.UnionAll:
		return "union-all"
	}
	return fmt.Sprintf("%T", e)
}

// opBase carries the bookkeeping every operator shares: output columns,
// closed/error state, the operator span, and locally accumulated traffic
// counters flushed to the process registry once at Close.
type opBase struct {
	cols   []string
	closed bool
	err    error
	sp     *obsv.Span

	rows, batches int64
}

func (b *opBase) Cols() []string { return b.cols }

// emit records one outgoing batch.
func (b *opBase) emit(n int) {
	b.rows += int64(n)
	b.batches++
}

// finish ends the operator: flushes counters, ends the span. Idempotent
// via the closed flag its caller sets.
func (b *opBase) finish() {
	if b.rows > 0 || b.batches > 0 {
		obsv.Add(obsv.MExecRows, b.rows)
		obsv.Add(obsv.MExecBatches, b.batches)
	}
	if b.err != nil {
		b.sp.End(obsv.OutcomeError,
			obsv.String("error", b.err.Error()),
			obsv.String("rows", fmt.Sprint(b.rows)))
		return
	}
	b.sp.End(obsv.OutcomeOK,
		obsv.String("rows", fmt.Sprint(b.rows)),
		obsv.String("batches", fmt.Sprint(b.batches)))
}

// fail marks the stream failed and returns the sticky error.
func (b *opBase) fail(err error) ([]Tuple, bool, error) {
	if b.err == nil {
		b.err = err
	}
	return nil, false, b.err
}

// gate returns (handled) results for the common preamble: closed streams
// yield (nil,false,nil), failed streams re-yield their sticky error.
func (b *opBase) gate() ([]Tuple, bool, error, bool) {
	if b.closed {
		return nil, false, nil, true
	}
	if b.err != nil {
		return nil, false, b.err, true
	}
	return nil, false, nil, false
}

// open builds the iterator tree.
func open(ctx context.Context, env *Env, e cqt.Expr, opts Options, parent *obsv.Span) (Iterator, error) {
	cols, err := env.Catalog.Cols(e)
	if err != nil {
		return nil, err
	}
	switch v := e.(type) {
	case cqt.ScanTable:
		if env.Store == nil {
			return nil, fmt.Errorf("exec: table scan %q without a table store", v.Table)
		}
		src, err := env.Store.Scan(ctx, v.Table, opts.batch())
		if err != nil {
			return nil, &OpError{Op: "scan", Target: v.Table, Err: err}
		}
		return &scanIter{
			opBase: opBase{cols: cols, sp: parent.Child("exec.scan", obsv.String("table", v.Table))},
			ctx:    ctx, table: v.Table, src: src,
		}, nil

	case cqt.ScanSet:
		if env.Client == nil {
			return nil, fmt.Errorf("exec: entity-set scan %q without a client state", v.Set)
		}
		return &clientScanIter{
			opBase: opBase{cols: cols, sp: parent.Child("exec.scan-set", obsv.String("set", v.Set))},
			ctx:    ctx, target: v.Set, batch: opts.batch(),
			entities: env.Client.Entities[v.Set],
		}, nil

	case cqt.ScanAssoc:
		if env.Client == nil {
			return nil, fmt.Errorf("exec: association scan %q without a client state", v.Assoc)
		}
		return &clientScanIter{
			opBase: opBase{cols: cols, sp: parent.Child("exec.scan-assoc", obsv.String("assoc", v.Assoc))},
			ctx:    ctx, target: v.Assoc, batch: opts.batch(),
			pairs: env.Client.Assocs[v.Assoc],
		}, nil

	case cqt.Select:
		in, err := open(ctx, env, v.In, opts, parent)
		if err != nil {
			return nil, err
		}
		return &selectIter{
			opBase: opBase{cols: cols, sp: parent.Child("exec.select")},
			in:     in, cond: v.Cond, th: cqt.EvalTheory(env.Catalog),
		}, nil

	case cqt.Project:
		in, err := open(ctx, env, v.In, opts, parent)
		if err != nil {
			return nil, err
		}
		return &projectIter{
			opBase: opBase{cols: cols, sp: parent.Child("exec.project")},
			in:     in, pcols: v.Cols,
		}, nil

	case cqt.Join:
		return openJoin(ctx, env, v, cols, opts, parent)

	case cqt.UnionAll:
		if len(v.Inputs) == 0 {
			return nil, fmt.Errorf("exec: empty union")
		}
		cols0, err := env.Catalog.Cols(v.Inputs[0])
		if err != nil {
			return nil, err
		}
		u := &unionIter{opBase: opBase{cols: cols, sp: parent.Child("exec.union-all")}}
		for i, in := range v.Inputs {
			cs, err := env.Catalog.Cols(in)
			if err != nil {
				u.closeInputs()
				return nil, err
			}
			if i > 0 && !sameColSet(cols0, cs) {
				u.closeInputs()
				return nil, fmt.Errorf("exec: union inputs have different columns: %v vs %v", cols0, cs)
			}
			it, err := open(ctx, env, in, opts, parent)
			if err != nil {
				u.closeInputs()
				return nil, err
			}
			u.inputs = append(u.inputs, it)
		}
		return u, nil
	}
	return nil, fmt.Errorf("exec: unknown expression %T", e)
}

// rootIter wraps the tree so the run-level span closes exactly once,
// after every operator span.
type rootIter struct {
	child  Iterator
	sp     *obsv.Span
	closed bool
	err    error
}

func (r *rootIter) Cols() []string { return r.child.Cols() }

func (r *rootIter) Next() ([]Tuple, bool, error) {
	if r.closed {
		return nil, false, nil
	}
	batch, ok, err := r.child.Next()
	if err != nil {
		r.err = err
	}
	return batch, ok, err
}

func (r *rootIter) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	err := r.child.Close()
	if r.err != nil {
		r.sp.End(obsv.OutcomeError, obsv.String("error", r.err.Error()))
	} else {
		r.sp.End(obsv.OutcomeOK)
	}
	return err
}

// scanIter streams a table store scan, converting rows to tuples. It is
// the executor's fault-injection surface: faultinject.SiteExecScan fires
// once per batch before the store is read.
type scanIter struct {
	opBase
	ctx   context.Context
	table string
	src   RowIter
	buf   []Tuple
}

func (s *scanIter) Next() ([]Tuple, bool, error) {
	if t, ok, err, handled := s.gate(); handled {
		return t, ok, err
	}
	if err := s.ctx.Err(); err != nil {
		return s.fail(&OpError{Op: "scan", Target: s.table, Err: err})
	}
	if err := faultinject.At(faultinject.SiteExecScan); err != nil {
		obsv.Add(obsv.MExecScanFaults, 1)
		return s.fail(&OpError{Op: "scan", Target: s.table, Err: err})
	}
	rows, ok, err := s.src.Next()
	if err != nil {
		obsv.Add(obsv.MExecScanFaults, 1)
		return s.fail(&OpError{Op: "scan", Target: s.table, Err: err})
	}
	if !ok {
		return nil, false, nil
	}
	if cap(s.buf) < len(rows) {
		s.buf = make([]Tuple, len(rows))
	}
	out := s.buf[:len(rows)]
	for i, r := range rows {
		out[i] = Tuple{Data: r}
	}
	s.emit(len(out))
	obsv.Add(obsv.MExecScanRows, int64(len(out)))
	return out, true, nil
}

func (s *scanIter) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.src.Close()
	s.finish()
	return err
}

// clientScanIter streams a client entity set or association set. Exactly
// one of entities/pairs is set.
type clientScanIter struct {
	opBase
	ctx      context.Context
	target   string
	batch    int
	entities []*state.Entity
	pairs    []state.AssocPair
	off      int
	buf      []Tuple
}

func (s *clientScanIter) Next() ([]Tuple, bool, error) {
	if t, ok, err, handled := s.gate(); handled {
		return t, ok, err
	}
	if err := s.ctx.Err(); err != nil {
		return s.fail(&OpError{Op: "scan", Target: s.target, Err: err})
	}
	n := len(s.entities) + len(s.pairs)
	if s.off >= n {
		return nil, false, nil
	}
	end := s.off + s.batch
	if end > n {
		end = n
	}
	if cap(s.buf) < end-s.off {
		s.buf = make([]Tuple, end-s.off)
	}
	out := s.buf[:end-s.off]
	for i := range out {
		if s.entities != nil {
			e := s.entities[s.off+i]
			out[i] = Tuple{Types: map[string]string{"": e.Type}, Data: e.Attrs}
		} else {
			out[i] = Tuple{Data: s.pairs[s.off+i].Ends}
		}
	}
	s.off = end
	s.emit(len(out))
	obsv.Add(obsv.MExecScanRows, int64(len(out)))
	return out, true, nil
}

func (s *clientScanIter) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.entities, s.pairs = nil, nil
	s.finish()
	return nil
}

// selectIter filters batches in place (the input batch is owned by the
// consumer until the next pull, so compacting it is safe).
type selectIter struct {
	opBase
	in   Iterator
	cond cond.Expr
	th   cond.Theory
}

func (s *selectIter) Next() ([]Tuple, bool, error) {
	if t, ok, err, handled := s.gate(); handled {
		return t, ok, err
	}
	for {
		batch, ok, err := s.in.Next()
		if err != nil {
			return s.fail(err)
		}
		if !ok {
			return nil, false, nil
		}
		out := batch[:0]
		for _, t := range batch {
			if cond.EvalOn(s.th, s.cond, t) {
				out = append(out, t)
			}
		}
		if len(out) == 0 {
			continue // fully filtered batch; pull the next one
		}
		s.emit(len(out))
		return out, true, nil
	}
}

func (s *selectIter) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.in.Close()
	s.finish()
	return err
}

// projectIter renames, drops and computes columns into fresh rows.
type projectIter struct {
	opBase
	in    Iterator
	pcols []cqt.ProjCol
	buf   []Tuple
}

func (p *projectIter) Next() ([]Tuple, bool, error) {
	if t, ok, err, handled := p.gate(); handled {
		return t, ok, err
	}
	batch, ok, err := p.in.Next()
	if err != nil {
		return p.fail(err)
	}
	if !ok {
		return nil, false, nil
	}
	if cap(p.buf) < len(batch) {
		p.buf = make([]Tuple, len(batch))
	}
	out := p.buf[:len(batch)]
	for i, t := range batch {
		nr := make(state.Row, len(p.pcols))
		for _, pc := range p.pcols {
			if pc.Lit != nil {
				if val, ok := pc.Lit.Value(); ok {
					nr[pc.As] = val
				}
				continue
			}
			if val, ok := t.Data[pc.Src]; ok {
				nr[pc.As] = val
			}
		}
		out[i] = Tuple{Types: t.Types, Data: nr}
	}
	p.emit(len(out))
	return out, true, nil
}

func (p *projectIter) Close() error {
	if p.closed {
		return nil
	}
	p.closed = true
	err := p.in.Close()
	p.finish()
	return err
}

// unionIter drains its inputs in order, passing their batches through.
type unionIter struct {
	opBase
	inputs []Iterator
	cur    int
}

func (u *unionIter) Next() ([]Tuple, bool, error) {
	if t, ok, err, handled := u.gate(); handled {
		return t, ok, err
	}
	for u.cur < len(u.inputs) {
		batch, ok, err := u.inputs[u.cur].Next()
		if err != nil {
			return u.fail(err)
		}
		if ok {
			u.emit(len(batch))
			return batch, true, nil
		}
		u.cur++
	}
	return nil, false, nil
}

func (u *unionIter) closeInputs() error {
	var first error
	for _, in := range u.inputs {
		if err := in.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (u *unionIter) Close() error {
	if u.closed {
		return nil
	}
	u.closed = true
	err := u.closeInputs()
	u.finish()
	return err
}

func sameColSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[string]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	for _, x := range b {
		if !set[x] {
			return false
		}
	}
	return true
}
