package exec_test

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"

	"github.com/ormkit/incmap/internal/compiler"
	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/cqt"
	"github.com/ormkit/incmap/internal/exec"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/orm"
	"github.com/ormkit/incmap/internal/state"
	"github.com/ormkit/incmap/internal/workload"
)

// compileWL compiles a workload mapping and returns it with its views and
// a random client state.
func compileWL(t *testing.T, m *frag.Mapping, seed uint32) (*frag.Views, *state.ClientState, *state.StoreState) {
	t.Helper()
	c := &compiler.Compiler{}
	v, err := c.CompileCtx(context.Background(), m)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cs := orm.RandomState(m, seed, 4)
	ss, err := orm.Materialize(m, v, cs)
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	return v, cs, ss
}

// canonicalRows renders rows as a sorted multiset.
func canonicalRows(rows []state.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.Canonical()
	}
	sort.Strings(out)
	return out
}

// canonicalEnts renders entities as a sorted multiset.
func canonicalEnts(es []*state.Entity) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.Canonical()
	}
	sort.Strings(out)
	return out
}

func equalMultisets(t *testing.T, what string, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: materializing path has %d rows, streaming has %d", what, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: multisets diverge at %d:\n  materialize: %s\n  stream:      %s", what, i, want[i], got[i])
		}
	}
}

// checkAllViews streams every compiled view of the mapping and compares
// each against the materializing evaluator, over both a RingStore and a
// MapStore and across several batch sizes.
func checkAllViews(t *testing.T, m *frag.Mapping, v *frag.Views, cs *state.ClientState, ss *state.StoreState, batch int) {
	t.Helper()
	ctx := context.Background()
	opts := exec.Options{BatchSize: batch}
	matEnv := &cqt.Env{Catalog: m.Catalog(), Client: cs, Store: ss}
	stores := map[string]exec.TableStore{
		"ring": exec.RingFromState(ss, 3),
		"map":  exec.NewMapStore(ss),
	}

	for storeName, ts := range stores {
		execEnv := &exec.Env{Catalog: m.Catalog(), Store: ts, Client: cs}

		for ty, view := range v.Query {
			what := fmt.Sprintf("query view %s (%s, batch %d)", ty, storeName, batch)
			res, err := cqt.Eval(matEnv, view.Q)
			if err != nil {
				t.Fatalf("%s: materializing eval: %v", what, err)
			}
			it, err := exec.Open(ctx, execEnv, view.Q, opts)
			if err != nil {
				t.Fatalf("%s: open: %v", what, err)
			}
			got, err := exec.Collect(it)
			if err != nil {
				t.Fatalf("%s: collect: %v", what, err)
			}
			equalMultisets(t, what, canonicalRows(res.Rows), canonicalRows(got.Rows))

			wantEnts, err := view.ConstructEntities(matEnv)
			if err != nil {
				t.Fatalf("%s: construct: %v", what, err)
			}
			eit, err := exec.OpenView(ctx, execEnv, view, exec.Strict, opts)
			if err != nil {
				t.Fatalf("%s: open view: %v", what, err)
			}
			gotEnts, err := exec.CollectEntities(eit)
			if err != nil {
				t.Fatalf("%s: collect entities: %v", what, err)
			}
			equalMultisets(t, what+" entities", canonicalEnts(wantEnts), canonicalEnts(gotEnts))
		}

		for table, view := range v.Update {
			what := fmt.Sprintf("update view %s (%s, batch %d)", table, storeName, batch)
			res, err := cqt.Eval(matEnv, view.Q)
			if err != nil {
				t.Fatalf("%s: materializing eval: %v", what, err)
			}
			it, err := exec.Open(ctx, execEnv, view.Q, opts)
			if err != nil {
				t.Fatalf("%s: open: %v", what, err)
			}
			got, err := exec.Collect(it)
			if err != nil {
				t.Fatalf("%s: collect: %v", what, err)
			}
			equalMultisets(t, what, canonicalRows(res.Rows), canonicalRows(got.Rows))
		}

		for assoc, view := range v.Assoc {
			what := fmt.Sprintf("assoc view %s (%s, batch %d)", assoc, storeName, batch)
			res, err := cqt.Eval(matEnv, view.Q)
			if err != nil {
				t.Fatalf("%s: materializing eval: %v", what, err)
			}
			it, err := exec.Open(ctx, execEnv, view.Q, opts)
			if err != nil {
				t.Fatalf("%s: open: %v", what, err)
			}
			got, err := exec.Collect(it)
			if err != nil {
				t.Fatalf("%s: collect: %v", what, err)
			}
			equalMultisets(t, what, canonicalRows(res.Rows), canonicalRows(got.Rows))
		}
	}
}

func TestStreamMatchesMaterialize(t *testing.T) {
	workloads := []struct {
		name string
		m    *frag.Mapping
	}{
		{"chain-4", workload.Chain(4)},
		{"hubrim-tph", workload.HubRim(workload.HubRimOptions{N: 2, M: 2, TPH: true})},
		{"hubrim-tpt", workload.HubRim(workload.HubRimOptions{N: 2, M: 2})},
		{"customer", workload.Customer(workload.DefaultCustomerOptions())},
		{"paper-initial", workload.PaperInitial()},
		{"paper-full", workload.PaperFull()},
	}
	for _, wl := range workloads {
		t.Run(wl.name, func(t *testing.T) {
			v, cs, ss := compileWL(t, wl.m, 42)
			for _, batch := range []int{1, 3, 1024} {
				checkAllViews(t, wl.m, v, cs, ss, batch)
			}
		})
	}
}

// TestPaperClientState pins the paper's §2.1 worked example through the
// streaming path.
func TestPaperClientState(t *testing.T) {
	m := workload.PaperFull()
	c := &compiler.Compiler{}
	v, err := c.CompileCtx(context.Background(), m)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cs := workload.PaperClientState()
	ss, err := orm.Materialize(m, v, cs)
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	checkAllViews(t, m, v, cs, ss, 2)
}

func TestRingStoreSegmentsAndSnapshots(t *testing.T) {
	rs := exec.NewRingStore(2)
	mkRow := func(i int) state.Row {
		return state.Row{"Id": cond.Int(int64(i))}
	}
	for i := 0; i < 5; i++ {
		rs.Append("T", mkRow(i))
	}
	if rs.Len("T") != 5 {
		t.Fatalf("Len = %d, want 5", rs.Len("T"))
	}
	it, err := rs.Scan(context.Background(), "T", 2)
	if err != nil {
		t.Fatal(err)
	}
	// Rows appended after the scan opened are invisible to it.
	rs.Append("T", mkRow(5), mkRow(6))
	n := 0
	for {
		rows, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n += len(rows)
	}
	if n != 5 {
		t.Fatalf("scan saw %d rows, want the 5-row snapshot", n)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if rs.Len("T") != 7 {
		t.Fatalf("Len = %d after appends, want 7", rs.Len("T"))
	}
	// Unknown tables scan empty, not error.
	it2, err := rs.Scan(context.Background(), "missing", 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := it2.Next(); ok {
		t.Fatal("scan of unknown table yielded rows")
	}
	_ = it2.Close()
}

func TestRingStoreConcurrentAppendScan(t *testing.T) {
	rs := exec.NewRingStore(8)
	mkRow := func(g, i int) state.Row {
		return state.Row{"G": cond.Int(int64(g)), "I": cond.Int(int64(i))}
	}
	var wg sync.WaitGroup
	const writers, perWriter = 4, 200
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rs.Append("T", mkRow(g, i))
			}
		}(g)
	}
	// Concurrent scans: every observed count must be a valid prefix and
	// every row intact.
	var sg sync.WaitGroup
	for r := 0; r < 4; r++ {
		sg.Add(1)
		go func() {
			defer sg.Done()
			for k := 0; k < 20; k++ {
				it, err := rs.Scan(context.Background(), "T", 16)
				if err != nil {
					t.Error(err)
					return
				}
				n := 0
				for {
					rows, ok, err := it.Next()
					if err != nil {
						t.Error(err)
						return
					}
					if !ok {
						break
					}
					for _, row := range rows {
						if _, ok := row["G"]; !ok {
							t.Error("scan observed a torn row")
							return
						}
					}
					n += len(rows)
				}
				_ = it.Close()
				if n > writers*perWriter {
					t.Errorf("scan observed %d rows, more than ever appended", n)
					return
				}
			}
		}()
	}
	wg.Wait()
	sg.Wait()
	if got := rs.Len("T"); got != writers*perWriter {
		t.Fatalf("Len = %d, want %d", got, writers*perWriter)
	}
}
