// Package exec is the streaming view executor: it evaluates compiled cqt
// query and update views as trees of composable pull iterators over
// batched rows, instead of materializing whole states as the cqt
// evaluator does. Scans pull from a TableStore — an append/scan interface
// with an in-memory segmented ring implementation and an adapter over the
// existing map-backed state.StoreState — so the data a view runs over no
// longer has to fit behind a single map copy. Selection, projection,
// hash joins (inner/left-outer/full-outer), union-all and constructor
// (CASE) application all stream batch-at-a-time; only a join's build side
// blocks, and it reports the rows it holds.
//
// The executor is held to the materializing path by differential tests
// (internal/difftest's FuzzExecVsMaterialize), in the spirit of
// Incremental Relational Lenses: correctness of the incremental/streaming
// artifact is established against the naive recompute, not by inspection.
package exec

import (
	"context"
	"sort"
	"sync"

	"github.com/ormkit/incmap/internal/state"
)

// RowIter is a batched pull iterator over raw table rows. Next returns
// the next batch; ok=false means the scan is exhausted. Returned row
// slices and the rows they hold are read-only and remain valid only
// until the next Next or Close call.
type RowIter interface {
	Next() (rows []state.Row, ok bool, err error)
	Close() error
}

// TableStore is the executor's data source: something that can enumerate
// its tables and open batched scans over them. Scans observe a snapshot
// of the table taken at open time — rows appended afterwards are not
// seen, and appends never invalidate an open scan.
type TableStore interface {
	// Tables returns the sorted names of tables holding at least one row.
	Tables() []string
	// Len reports the number of rows currently in the table.
	Len(table string) int
	// Scan opens a batched iterator over the table's rows as of the call.
	// Unknown or empty tables yield an empty scan, not an error.
	Scan(ctx context.Context, table string, batch int) (RowIter, error)
}

// Appender is the write half a streaming materialization needs. Rows
// handed to Append are owned by the store afterwards.
type Appender interface {
	Append(table string, rows ...state.Row)
}

// sliceIter walks an immutable snapshot of row slices in batches.
type sliceIter struct {
	ctx    context.Context
	segs   [][]state.Row
	seg    int
	off    int
	batch  int
	closed bool
}

func (it *sliceIter) Next() ([]state.Row, bool, error) {
	if it.closed {
		return nil, false, nil
	}
	if err := it.ctx.Err(); err != nil {
		return nil, false, err
	}
	for it.seg < len(it.segs) {
		seg := it.segs[it.seg]
		if it.off >= len(seg) {
			it.seg++
			it.off = 0
			continue
		}
		end := it.off + it.batch
		if end > len(seg) {
			end = len(seg)
		}
		out := seg[it.off:end:end]
		it.off = end
		return out, true, nil
	}
	return nil, false, nil
}

func (it *sliceIter) Close() error {
	it.closed = true
	it.segs = nil
	return nil
}

// MapStore adapts a materialized state.StoreState to the TableStore
// interface. The adapted state must be treated as immutable while scans
// are open (the daemon's data plane already swaps whole states on write,
// so sharing is safe there); appends go straight into the state's maps
// and are only safe without concurrent scans.
type MapStore struct {
	S *state.StoreState
}

// NewMapStore wraps an existing store state.
func NewMapStore(s *state.StoreState) MapStore { return MapStore{S: s} }

// Tables implements TableStore.
func (m MapStore) Tables() []string {
	out := make([]string, 0, len(m.S.Tables))
	for t, rows := range m.S.Tables {
		if len(rows) > 0 {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}

// Len implements TableStore.
func (m MapStore) Len(table string) int { return len(m.S.Tables[table]) }

// Scan implements TableStore.
func (m MapStore) Scan(ctx context.Context, table string, batch int) (RowIter, error) {
	rows := m.S.Tables[table]
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	return &sliceIter{ctx: ctx, segs: [][]state.Row{rows}, batch: batch}, nil
}

// Append implements Appender.
func (m MapStore) Append(table string, rows ...state.Row) {
	m.S.Tables[table] = append(m.S.Tables[table], rows...)
}

// RingStore is the executor's native store: a per-table, append-only
// segmented row log sized for real data volumes. Appends go to the tail
// segment under the table's lock; scans snapshot the segment list and
// per-segment lengths once at open and then iterate without locks, so a
// scan never copies rows, never blocks appenders, and concurrent appends
// are simply invisible to scans opened before them. Committed rows are
// never moved or rewritten (segments have fixed capacity, so growth
// never reallocates a segment another scan is reading).
type RingStore struct {
	mu     sync.RWMutex
	tables map[string]*ringTable
	segCap int
}

type ringTable struct {
	mu   sync.RWMutex
	segs [][]state.Row
	n    int
}

// DefaultSegmentCap is the rows-per-segment default for NewRingStore.
const DefaultSegmentCap = 4096

// NewRingStore returns an empty ring store with the given segment
// capacity (rows per segment; <=0 selects DefaultSegmentCap).
func NewRingStore(segCap int) *RingStore {
	if segCap <= 0 {
		segCap = DefaultSegmentCap
	}
	return &RingStore{tables: map[string]*ringTable{}, segCap: segCap}
}

// RingFromState seeds a ring store with every row of a materialized
// store state. Rows are shared, not copied: the source state must not be
// mutated afterwards.
func RingFromState(ss *state.StoreState, segCap int) *RingStore {
	r := NewRingStore(segCap)
	for t, rows := range ss.Tables {
		r.Append(t, rows...)
	}
	return r
}

func (r *RingStore) table(name string, create bool) *ringTable {
	r.mu.RLock()
	t := r.tables[name]
	r.mu.RUnlock()
	if t != nil || !create {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t = r.tables[name]; t == nil {
		t = &ringTable{}
		r.tables[name] = t
	}
	return t
}

// Append adds rows to the table's tail segment, creating the table on
// first use. The store owns the rows afterwards.
func (r *RingStore) Append(table string, rows ...state.Row) {
	if len(rows) == 0 {
		return
	}
	t := r.table(table, true)
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(rows) > 0 {
		if len(t.segs) == 0 || len(t.segs[len(t.segs)-1]) == cap(t.segs[len(t.segs)-1]) {
			t.segs = append(t.segs, make([]state.Row, 0, r.segCap))
		}
		tail := t.segs[len(t.segs)-1]
		n := cap(tail) - len(tail)
		if n > len(rows) {
			n = len(rows)
		}
		t.segs[len(t.segs)-1] = append(tail, rows[:n]...)
		t.n += n
		rows = rows[n:]
	}
}

// Reset drops every row of the table. Scans opened before the reset keep
// reading their snapshot.
func (r *RingStore) Reset(table string) {
	t := r.table(table, false)
	if t == nil {
		return
	}
	t.mu.Lock()
	t.segs = nil
	t.n = 0
	t.mu.Unlock()
}

// Tables implements TableStore.
func (r *RingStore) Tables() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.tables))
	for name, t := range r.tables {
		t.mu.RLock()
		n := t.n
		t.mu.RUnlock()
		if n > 0 {
			out = append(out, name)
		}
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Len implements TableStore.
func (r *RingStore) Len(table string) int {
	t := r.table(table, false)
	if t == nil {
		return 0
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.n
}

// Scan implements TableStore: the returned iterator walks the snapshot
// of the table taken now, without copying rows or holding locks.
func (r *RingStore) Scan(ctx context.Context, table string, batch int) (RowIter, error) {
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	t := r.table(table, false)
	if t == nil {
		return &sliceIter{ctx: ctx, batch: batch}, nil
	}
	t.mu.RLock()
	segs := make([][]state.Row, len(t.segs))
	for i, s := range t.segs {
		segs[i] = s[:len(s):len(s)]
	}
	t.mu.RUnlock()
	return &sliceIter{ctx: ctx, segs: segs, batch: batch}, nil
}

// Snapshot materializes the store's current contents as a state.StoreState
// (rows shared, not copied). Tests use it to check a store survived a
// faulted scan untouched; production reads should scan instead.
func (r *RingStore) Snapshot() (*state.StoreState, error) {
	ss := state.NewStoreState()
	for _, name := range r.Tables() {
		it, err := r.Scan(context.Background(), name, DefaultBatchSize)
		if err != nil {
			return nil, err
		}
		for {
			rows, ok, err := it.Next()
			if err != nil {
				_ = it.Close()
				return nil, err
			}
			if !ok {
				break
			}
			ss.Tables[name] = append(ss.Tables[name], rows...)
		}
		if err := it.Close(); err != nil {
			return nil, err
		}
	}
	return ss, nil
}

// TotalRows sums Len over every table of a store.
func TotalRows(ts TableStore) int {
	n := 0
	for _, t := range ts.Tables() {
		n += ts.Len(t)
	}
	return n
}

var _ TableStore = MapStore{}
var _ Appender = MapStore{}
var _ TableStore = (*RingStore)(nil)
var _ Appender = (*RingStore)(nil)
