// Package xver compiles cross-version views between two compiled mapping
// generations, so clients of schema version k can keep reading and writing
// while the store has already moved to version k+1 (a blue-green rollout).
// The design follows the multi-schema-version evolution language of Kamina
// et al. and "Programmable View Update Strategies on Relations" (Tran et
// al.): several versions stay simultaneously readable/writable, and the
// update-view behaviour for data the old version cannot supply is a
// pluggable policy — per association and per inheritance hierarchy — not a
// hard-coded rule.
//
// A Plan is compiled once per (from, to) generation pair and contains:
//
//   - cross-read views: for every version-k entity set, the version-k+1
//     query view with its constructor restricted to version-k types and
//     attributes, so a version-k client reads the new store and sees
//     exactly the version-k projection (rows constructing types the old
//     version does not know are skipped, not errors);
//   - cross-write transforms: a per-table column program translating
//     version-k update-view output into the version-k+1 layout — shared
//     columns copy through, columns the old version cannot supply ("gap
//     columns") are filled by the strategy owning that column's hierarchy
//     or association;
//   - the backfill program: the same per-table transforms applied to the
//     existing store rows, which is what makes the transform a compiled
//     artifact rather than an interpreter — one plan drives canary checks,
//     live cross-version writes and the batched backfill identically.
package xver

import (
	"fmt"
	"sort"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/cqt"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/orm"
	"github.com/ormkit/incmap/internal/state"
)

// Gen is one compiled generation: a mapping and the views compiled for it.
type Gen struct {
	M *frag.Mapping
	V *frag.Views
}

// Strategy decides how a cross-version write fills a store column the old
// version cannot supply. Fill returns the value to store (ok=false leaves
// the column NULL); a non-nil error rejects every cross-version write that
// would produce rows for the column's table (the paper's "writes must
// drain first" policy).
type Strategy interface {
	Name() string
	Fill(table, col string, dom cond.Domain) (val cond.Value, ok bool, err error)
}

// NullFill leaves gap columns NULL: the least surprising policy, correct
// whenever the new columns are nullable. It is the default strategy.
type NullFill struct{}

// Name implements Strategy.
func (NullFill) Name() string { return "null" }

// Fill implements Strategy.
func (NullFill) Fill(string, string, cond.Domain) (cond.Value, bool, error) {
	return cond.Value{}, false, nil
}

// DefaultFill stores the domain's zero value — first enum member for
// enumerated columns, otherwise ""/0/0.0/false — for stores that refuse
// NULLs in the new columns.
type DefaultFill struct{}

// Name implements Strategy.
func (DefaultFill) Name() string { return "default" }

// Fill implements Strategy.
func (DefaultFill) Fill(_, _ string, dom cond.Domain) (cond.Value, bool, error) {
	if len(dom.Enum) > 0 {
		return dom.Enum[0], true, nil
	}
	switch dom.Kind {
	case cond.KindInt:
		return cond.Int(0), true, nil
	case cond.KindFloat:
		return cond.Float(0), true, nil
	case cond.KindBool:
		return cond.Bool(false), true, nil
	default:
		return cond.String(""), true, nil
	}
}

// RejectWrites refuses cross-version writes into the owning hierarchy or
// association: any transform that would produce rows for a table with a
// rejected gap column fails, forcing the rollout to drain version-k
// writers before cutover.
type RejectWrites struct{}

// Name implements Strategy.
func (RejectWrites) Name() string { return "reject" }

// Fill implements Strategy.
func (RejectWrites) Fill(table, col string, _ cond.Domain) (cond.Value, bool, error) {
	return cond.Value{}, false, fmt.Errorf("xver: cross-version writes into %s.%s are rejected by policy", table, col)
}

// StrategyByName resolves a wire/config strategy name.
func StrategyByName(name string) (Strategy, error) {
	switch name {
	case "", "null":
		return NullFill{}, nil
	case "default":
		return DefaultFill{}, nil
	case "reject":
		return RejectWrites{}, nil
	default:
		return nil, fmt.Errorf("xver: unknown update strategy %q", name)
	}
}

// Strategies dispatches update-view generation per association and per
// inheritance hierarchy (keyed by the hierarchy's root entity type), with
// a default for everything unclaimed. The zero value means NullFill
// everywhere.
type Strategies struct {
	Default     Strategy
	ByHierarchy map[string]Strategy
	ByAssoc     map[string]Strategy
}

func (s Strategies) forHierarchy(root string) Strategy {
	if st, ok := s.ByHierarchy[root]; ok {
		return st
	}
	return s.fallback()
}

func (s Strategies) forAssoc(assoc string) Strategy {
	if st, ok := s.ByAssoc[assoc]; ok {
		return st
	}
	return s.fallback()
}

func (s Strategies) fallback() Strategy {
	if s.Default != nil {
		return s.Default
	}
	return NullFill{}
}

// colFill is one compiled gap-column action.
type colFill struct {
	col      string
	val      cond.Value
	set      bool   // store val; false leaves NULL
	reject   bool   // any row for this table is a policy violation
	owner    string // "hierarchy X" or "assoc Y", for diagnostics
	strategy string
}

// tableXf is the compiled transform from the old layout of one table to
// the new layout.
type tableXf struct {
	copyCols []string
	fills    []colFill
}

// Plan is the compiled cross-version artifact for one (from, to) pair.
type Plan struct {
	From, To Gen

	// readViews maps old entity-set names to the version-restricted
	// constructor view over the new store; readTypes records the set's
	// declared type for diagnostics.
	readViews  map[string]*cqt.View
	assocViews map[string]*cqt.View

	// xf maps new-store table names to their layout transforms.
	xf map[string]*tableXf

	// LostSets / LostAssocs name version-k sets that version k+1 can no
	// longer serve (their type or association was dropped); reading them
	// cross-version yields nothing, which the rollout gates treat as data
	// loss whenever the old store still holds rows for them.
	LostSets   []string
	LostAssocs []string
	// DroppedTables are old tables absent from the new store schema:
	// their rows do not survive migration.
	DroppedTables []string
	// Notes carry human-readable compile diagnostics (gap columns and the
	// strategies that own them, lost sets, dropped tables).
	Notes []string
}

// Compile builds the cross-version plan from generation `from` to
// generation `to` under the given strategy set.
func Compile(from, to Gen, strat Strategies) (*Plan, error) {
	if from.M == nil || from.V == nil || to.M == nil || to.V == nil {
		return nil, fmt.Errorf("xver: both generations must carry a mapping and views")
	}
	p := &Plan{
		From:       from,
		To:         to,
		readViews:  map[string]*cqt.View{},
		assocViews: map[string]*cqt.View{},
		xf:         map[string]*tableXf{},
	}
	p.compileReadViews()
	if err := p.compileTransforms(strat); err != nil {
		return nil, err
	}
	return p, nil
}

// compileReadViews restricts the new generation's query constructors to
// the old version's types and attributes.
func (p *Plan) compileReadViews() {
	oldC, newC := p.From.M.Client, p.To.M.Client
	for _, set := range oldC.Sets() {
		nv, ok := p.To.V.Query[set.Type]
		if !ok || newC.Type(set.Type) == nil {
			p.LostSets = append(p.LostSets, set.Name)
			p.Notes = append(p.Notes, fmt.Sprintf("set %s (type %s) is not readable in the new version", set.Name, set.Type))
			continue
		}
		out := &cqt.View{Q: nv.Q}
		for _, c := range nv.Cases {
			if oldC.Type(c.Type) == nil {
				continue // entities of new-only types are invisible to old clients
			}
			keep := map[string]bool{}
			for _, a := range oldC.AllAttrs(c.Type) {
				keep[a.Name] = true
			}
			attrs := map[string]string{}
			for attr, col := range c.Attrs {
				if keep[attr] {
					attrs[attr] = col
				}
			}
			out.Cases = append(out.Cases, cqt.Case{When: c.When, Type: c.Type, Attrs: attrs})
		}
		p.readViews[set.Name] = out
	}
	for _, a := range oldC.Associations() {
		nv, ok := p.To.V.Assoc[a.Name]
		if !ok {
			p.LostAssocs = append(p.LostAssocs, a.Name)
			p.Notes = append(p.Notes, fmt.Sprintf("association %s is not readable in the new version", a.Name))
			continue
		}
		p.assocViews[a.Name] = nv
	}
}

// compileTransforms derives the per-table layout programs and resolves
// every gap column's strategy.
func (p *Plan) compileTransforms(strat Strategies) error {
	oldS, newS := p.From.M.Store, p.To.M.Store
	for _, nt := range newS.Tables() {
		ot := oldS.Table(nt.Name)
		xf := &tableXf{}
		for _, c := range nt.Cols {
			if ot != nil && ot.HasCol(c.Name) {
				xf.copyCols = append(xf.copyCols, c.Name)
				continue
			}
			owner, st := p.ownerStrategy(nt.Name, c.Name, strat)
			val, set, err := st.Fill(nt.Name, c.Name, c.Domain())
			fill := colFill{col: c.Name, val: val, set: set, owner: owner, strategy: st.Name()}
			if err != nil {
				fill.reject = true
			}
			xf.fills = append(xf.fills, fill)
			p.Notes = append(p.Notes, fmt.Sprintf("gap column %s.%s filled by %q (%s)", nt.Name, c.Name, st.Name(), owner))
		}
		p.xf[nt.Name] = xf
	}
	for _, ot := range oldS.Tables() {
		if newS.Table(ot.Name) == nil {
			p.DroppedTables = append(p.DroppedTables, ot.Name)
			p.Notes = append(p.Notes, fmt.Sprintf("table %s is dropped in the new version; its rows do not survive migration", ot.Name))
		}
	}
	sort.Strings(p.DroppedTables)
	return nil
}

// ownerStrategy finds the hierarchy or association owning a gap column in
// the new mapping and resolves its strategy.
func (p *Plan) ownerStrategy(table, col string, strat Strategies) (string, Strategy) {
	for _, f := range p.To.M.Frags {
		if f.Table != table || !f.MapsCol(col) {
			continue
		}
		if f.Assoc != "" {
			return "assoc " + f.Assoc, strat.forAssoc(f.Assoc)
		}
		if set := p.To.M.Client.Set(f.Set); set != nil {
			root := p.To.M.Client.RootOf(set.Type)
			return "hierarchy " + root, strat.forHierarchy(root)
		}
	}
	return "unmapped", strat.fallback()
}

// GapColumns reports the gap columns of one table with their resolved
// strategies, for status surfaces.
func (p *Plan) GapColumns(table string) []string {
	xf := p.xf[table]
	if xf == nil {
		return nil
	}
	out := make([]string, 0, len(xf.fills))
	for _, f := range xf.fills {
		out = append(out, fmt.Sprintf("%s(%s)", f.col, f.strategy))
	}
	return out
}

// TransformTable translates one table's rows from the old layout to the
// new one. Rows of tables the new schema dropped yield (nil, 0 kept) and
// count as dropped. The returned dropped count reports rows lost to
// dropped tables (always 0 for surviving tables).
func (p *Plan) TransformTable(table string, rows []state.Row) (out []state.Row, dropped int, err error) {
	xf, ok := p.xf[table]
	if !ok {
		return nil, len(rows), nil
	}
	if len(rows) == 0 {
		return nil, 0, nil
	}
	for _, f := range xf.fills {
		if f.reject {
			return nil, 0, fmt.Errorf("xver: update strategy %q (%s) rejects cross-version rows for table %s",
				f.strategy, f.owner, table)
		}
	}
	out = make([]state.Row, 0, len(rows))
	for _, r := range rows {
		nr := state.Row{}
		for _, c := range xf.copyCols {
			if v, ok := r[c]; ok {
				nr[c] = v
			}
		}
		for _, f := range xf.fills {
			if f.set {
				nr[f.col] = f.val
			}
		}
		out = append(out, nr)
	}
	return out, 0, nil
}

// Transform migrates a whole store state from the old layout to the new
// one, reporting rows lost to dropped tables.
func (p *Plan) Transform(ss *state.StoreState) (*state.StoreState, int, error) {
	out := state.NewStoreState()
	tables := make([]string, 0, len(ss.Tables))
	for t := range ss.Tables {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	lost := 0
	for _, t := range tables {
		rows, dropped, err := p.TransformTable(t, ss.Tables[t])
		if err != nil {
			return nil, lost, err
		}
		lost += dropped
		for _, r := range rows {
			out.InsertRow(t, r)
		}
	}
	return out, lost, nil
}

// ReadClient reads the version-k projection of a new-layout store state:
// every old entity set through its restricted constructor, every old
// association through the new association view. Rows constructing types
// the old version does not know are skipped.
func (p *Plan) ReadClient(ss *state.StoreState) (*state.ClientState, error) {
	env := &cqt.Env{Catalog: p.To.M.Catalog(), Store: ss}
	cs := state.NewClientState()
	sets := make([]string, 0, len(p.readViews))
	for s := range p.readViews {
		sets = append(sets, s)
	}
	sort.Strings(sets)
	for _, setName := range sets {
		v := p.readViews[setName]
		res, err := cqt.Eval(env, v.Q)
		if err != nil {
			return nil, fmt.Errorf("xver: cross-read view for %s: %w", setName, err)
		}
		for _, row := range res.Rows {
			if e, ok := cqt.ConstructVisible(v.Cases, row); ok {
				cs.Insert(setName, e)
			}
		}
	}
	assocs := make([]string, 0, len(p.assocViews))
	for a := range p.assocViews {
		assocs = append(assocs, a)
	}
	sort.Strings(assocs)
	for _, a := range assocs {
		res, err := cqt.Eval(env, p.assocViews[a].Q)
		if err != nil {
			return nil, fmt.Errorf("xver: cross-read association view for %s: %w", a, err)
		}
		for _, row := range res.Rows {
			cs.Relate(a, state.AssocPair{Ends: row})
		}
	}
	return cs, nil
}

// WriteClient materializes a version-k client state into the version-k+1
// store layout: through the old update views (whose output the old client
// contractually produces), then through the compiled layout transform.
func (p *Plan) WriteClient(cs *state.ClientState) (*state.StoreState, error) {
	ss, err := orm.Materialize(p.From.M, p.From.V, cs)
	if err != nil {
		return nil, fmt.Errorf("xver: cross-write: %w", err)
	}
	out, lost, err := p.Transform(ss)
	if err != nil {
		return nil, err
	}
	if lost > 0 {
		return nil, fmt.Errorf("xver: cross-write would lose %d row(s) to dropped tables", lost)
	}
	return out, nil
}

// CheckRoundtrip verifies the cross-version contract on one version-k
// client state: writing it through the cross-write path into the new
// layout and reading it back through the cross-read views must reproduce
// it exactly. The returned diff is "" when the contract holds.
func (p *Plan) CheckRoundtrip(cs *state.ClientState) (string, error) {
	ss, err := p.WriteClient(cs)
	if err != nil {
		return "", err
	}
	back, err := p.ReadClient(ss)
	if err != nil {
		return "", err
	}
	return state.Diff(cs, back), nil
}

// CheckMigration verifies migration fidelity on concrete data: the
// version-k projection of the migrated store must equal what version k
// read from the old store. The returned diff is "" when no data was lost
// or distorted.
func (p *Plan) CheckMigration(oldStore *state.StoreState) (string, error) {
	before, err := orm.Load(p.From.M, p.From.V, oldStore)
	if err != nil {
		return "", fmt.Errorf("xver: loading old store: %w", err)
	}
	migrated, _, err := p.Transform(oldStore)
	if err != nil {
		return "", err
	}
	after, err := p.ReadClient(migrated)
	if err != nil {
		return "", err
	}
	return state.Diff(before, after), nil
}
