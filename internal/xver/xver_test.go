package xver_test

import (
	"context"
	"strings"
	"testing"

	"github.com/ormkit/incmap/internal/compiler"
	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/core"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/modef"
	"github.com/ormkit/incmap/internal/orm"
	"github.com/ormkit/incmap/internal/state"
	"github.com/ormkit/incmap/internal/workload"
	"github.com/ormkit/incmap/internal/xver"
)

func compileGen(t *testing.T, m *frag.Mapping) xver.Gen {
	t.Helper()
	c := &compiler.Compiler{}
	v, err := c.CompileCtx(context.Background(), m)
	if err != nil {
		t.Fatalf("compiling base mapping: %v", err)
	}
	return xver.Gen{M: m, V: v}
}

// evolveGen applies SMOs through the same ladder the pipeline uses:
// incremental first, structural apply + full recompile as fallback.
func evolveGen(t *testing.T, g xver.Gen, ops ...core.SMO) xver.Gen {
	t.Helper()
	ctx := context.Background()
	m, v := g.M, g.V
	for _, op := range ops {
		ic := core.NewIncremental()
		nm, nv, err := ic.ApplyCtx(ctx, m, v, op)
		if err != nil {
			sic := core.NewIncremental()
			sic.Opts.SkipValidation = true
			nm, _, err = sic.ApplyCtx(ctx, m, v, op)
			if err != nil {
				t.Fatalf("structural apply of %s: %v", op.Describe(), err)
			}
			full := &compiler.Compiler{}
			nv, err = full.CompileCtx(ctx, nm)
			if err != nil {
				t.Fatalf("full recompile after %s: %v", op.Describe(), err)
			}
		}
		m, v = nm, nv
	}
	return xver.Gen{M: m, V: v}
}

// chainGens builds two independent chain(3) bases (the modef planners
// extend the store schema of the mapping they plan against, so the old
// generation must never share one with the planned evolution) and applies
// the evolution to the second.
func chainGens(t *testing.T, evolve func(t *testing.T, g xver.Gen) xver.Gen) (old, new xver.Gen) {
	t.Helper()
	m1, err := workload.ChainE(3)
	if err != nil {
		t.Fatalf("building old chain: %v", err)
	}
	m2, err := workload.ChainE(3)
	if err != nil {
		t.Fatalf("building new chain: %v", err)
	}
	return compileGen(t, m1), evolve(t, compileGen(t, m2))
}

var extraAttrs = []edm.Attribute{{Name: "ExtraAtt", Type: cond.KindString, Nullable: true}}

func addEntity(style modef.Style) func(t *testing.T, g xver.Gen) xver.Gen {
	return func(t *testing.T, g xver.Gen) xver.Gen {
		t.Helper()
		op, err := modef.PlanAddEntityWithStyle(g.M, "Extra", "Entity2", extraAttrs, style)
		if err != nil {
			t.Fatalf("planning AddEntity: %v", err)
		}
		return evolveGen(t, g, op)
	}
}

func addAssoc(m1, m2 edm.Mult) func(t *testing.T, g xver.Gen) xver.Gen {
	return func(t *testing.T, g xver.Gen) xver.Gen {
		t.Helper()
		op, err := modef.PlanAddAssociation(g.M, "NewRel", "Entity1", "Entity3", m1, m2)
		if err != nil {
			t.Fatalf("planning AddAssociation: %v", err)
		}
		return evolveGen(t, g, op)
	}
}

// TestCrossVersionRoundtrip checks the core contract on every additive
// evolution shape: an old-version client state cross-written into the new
// store layout and cross-read back must be unchanged, and migrating an
// old store must preserve the old version's reads exactly.
func TestCrossVersionRoundtrip(t *testing.T) {
	cases := []struct {
		name   string
		evolve func(t *testing.T, g xver.Gen) xver.Gen
	}{
		{"add-entity-tph", addEntity(modef.TPH)},
		{"add-entity-tpt", addEntity(modef.TPT)},
		{"add-assoc-fk", addAssoc(edm.Many, edm.ZeroOne)},
		{"add-assoc-jt", addAssoc(edm.Many, edm.Many)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			old, cur := chainGens(t, tc.evolve)
			plan, err := xver.Compile(old, cur, xver.Strategies{})
			if err != nil {
				t.Fatalf("compiling cross-version plan: %v", err)
			}
			for seed := uint32(1); seed <= 3; seed++ {
				cs := orm.RandomState(old.M, seed, 3)
				diff, err := plan.CheckRoundtrip(cs)
				if err != nil {
					t.Fatalf("seed %d: cross-version roundtrip: %v", seed, err)
				}
				if diff != "" {
					t.Fatalf("seed %d: cross-version roundtrip diverged:\n%s", seed, diff)
				}
				oldStore, err := orm.Materialize(old.M, old.V, cs)
				if err != nil {
					t.Fatalf("seed %d: materializing old store: %v", seed, err)
				}
				diff, err = plan.CheckMigration(oldStore)
				if err != nil {
					t.Fatalf("seed %d: migration check: %v", seed, err)
				}
				if diff != "" {
					t.Fatalf("seed %d: migration lost or distorted data:\n%s", seed, diff)
				}
			}
		})
	}
}

// TestNewVersionRowsInvisible: rows belonging to types the old version
// does not know must be silently skipped by cross-reads, never an error —
// the old client sees the old projection of the shared store.
func TestNewVersionRowsInvisible(t *testing.T) {
	old, cur := chainGens(t, addEntity(modef.TPH))
	plan, err := xver.Compile(old, cur, xver.Strategies{})
	if err != nil {
		t.Fatalf("compiling plan: %v", err)
	}

	// A mixed new-version state: old-type entities plus one Extra entity
	// (a subtype of Entity2, living in Entity2's set and table).
	cs := state.NewClientState()
	cs.Insert("Entity2Set", &state.Entity{Type: "Entity2", Attrs: state.Row{
		"Id": cond.Int(1), "EntityAtt2": cond.String("a"), "EntityAtt3": cond.String("b"), "EntityAtt4": cond.String("c"),
	}})
	cs.Insert("Entity2Set", &state.Entity{Type: "Extra", Attrs: state.Row{
		"Id": cond.Int(2), "EntityAtt2": cond.String("d"), "EntityAtt3": cond.String("e"), "EntityAtt4": cond.String("f"),
		"ExtraAtt": cond.String("new-version-only"),
	}})
	ss, err := orm.Materialize(cur.M, cur.V, cs)
	if err != nil {
		t.Fatalf("materializing new-version state: %v", err)
	}

	got, err := plan.ReadClient(ss)
	if err != nil {
		t.Fatalf("cross-read over mixed store: %v", err)
	}
	var sawOld bool
	for set, ents := range got.Entities {
		for _, e := range ents {
			if e.Type == "Extra" {
				t.Fatalf("cross-read surfaced a new-version entity in set %s: %s", set, e.Canonical())
			}
			if e.Type == "Entity2" {
				sawOld = true
				if _, ok := e.Attrs["ExtraAtt"]; ok {
					t.Fatalf("cross-read leaked a new-version attribute: %s", e.Canonical())
				}
			}
		}
	}
	if !sawOld {
		t.Fatal("cross-read dropped the old-version Entity2 entity")
	}
}

// TestGapColumnStrategies: columns the old version cannot supply are
// filled per the owning hierarchy's strategy.
func TestGapColumnStrategies(t *testing.T) {
	old, cur := chainGens(t, addEntity(modef.TPH))

	// Find the gap column TPH added to Entity2's table.
	const table = "TEntity2"
	nullPlan, err := xver.Compile(old, cur, xver.Strategies{})
	if err != nil {
		t.Fatalf("compiling null plan: %v", err)
	}
	gaps := nullPlan.GapColumns(table)
	if len(gaps) == 0 {
		t.Fatalf("expected TPH to add gap columns to %s", table)
	}
	for _, g := range gaps {
		if !strings.Contains(g, "(null)") {
			t.Fatalf("default strategy should be null fill, got %s", g)
		}
	}

	row := state.Row{"Id": cond.Int(7), "Disc": cond.String("Entity2")}

	// NullFill leaves the gap column absent.
	out, dropped, err := nullPlan.TransformTable(table, []state.Row{row})
	if err != nil || dropped != 0 || len(out) != 1 {
		t.Fatalf("null transform: out=%v dropped=%d err=%v", out, dropped, err)
	}
	if _, ok := out[0]["ExtraAtt"]; ok {
		t.Fatalf("null fill stored a value: %s", out[0].Canonical())
	}

	// DefaultFill on the owning hierarchy stores the domain zero value.
	defPlan, err := xver.Compile(old, cur, xver.Strategies{
		ByHierarchy: map[string]xver.Strategy{"Entity2": xver.DefaultFill{}},
	})
	if err != nil {
		t.Fatalf("compiling default plan: %v", err)
	}
	out, _, err = defPlan.TransformTable(table, []state.Row{row})
	if err != nil || len(out) != 1 {
		t.Fatalf("default transform: %v %v", out, err)
	}
	if v, ok := out[0]["ExtraAtt"]; !ok || v.Str() != "" {
		t.Fatalf("default fill should store the zero string, got %s", out[0].Canonical())
	}

	// RejectWrites refuses rows for the owning table but leaves other
	// tables writable.
	rejPlan, err := xver.Compile(old, cur, xver.Strategies{
		ByHierarchy: map[string]xver.Strategy{"Entity2": xver.RejectWrites{}},
	})
	if err != nil {
		t.Fatalf("compiling reject plan: %v", err)
	}
	if _, _, err := rejPlan.TransformTable(table, []state.Row{row}); err == nil {
		t.Fatal("reject strategy allowed a cross-version row")
	}
	if _, _, err := rejPlan.TransformTable("TEntity1", []state.Row{{"Id": cond.Int(1)}}); err != nil {
		t.Fatalf("reject strategy leaked onto an unaffected table: %v", err)
	}
	if _, _, err := rejPlan.TransformTable(table, nil); err != nil {
		t.Fatalf("reject strategy should allow the empty batch: %v", err)
	}
}

// TestAssocStrategyDispatch: a gap FK column introduced by AddAssociation
// is owned by the association, not the hierarchy of its table.
func TestAssocStrategyDispatch(t *testing.T) {
	old, cur := chainGens(t, addAssoc(edm.Many, edm.ZeroOne))
	plan, err := xver.Compile(old, cur, xver.Strategies{
		ByAssoc: map[string]xver.Strategy{"NewRel": xver.DefaultFill{}},
	})
	if err != nil {
		t.Fatalf("compiling plan: %v", err)
	}
	var owned bool
	for _, n := range plan.Notes {
		if strings.Contains(n, "assoc NewRel") && strings.Contains(n, `"default"`) {
			owned = true
		}
	}
	if !owned {
		t.Fatalf("expected a gap column owned by assoc NewRel with the default strategy; notes:\n%s",
			strings.Join(plan.Notes, "\n"))
	}
}

// TestDroppedTypeIsLoss: dropping a subtype or association makes its data
// unreadable in the new version; the plan reports lost associations and
// migration of data that still holds such entities diverges (the signal
// the rollout gates use).
func TestDroppedTypeIsLoss(t *testing.T) {
	m1, err := workload.ChainE(3)
	if err != nil {
		t.Fatalf("building old chain: %v", err)
	}
	m2, err := workload.ChainE(3)
	if err != nil {
		t.Fatalf("building new chain: %v", err)
	}
	old := addEntity(modef.TPH)(t, compileGen(t, m1))
	cur := evolveGen(t, addEntity(modef.TPH)(t, compileGen(t, m2)),
		&core.DropEntity{Name: "Extra"},
		&core.DropAssociation{Name: "RelOne3"},
	)

	plan, err := xver.Compile(old, cur, xver.Strategies{})
	if err != nil {
		t.Fatalf("compiling plan: %v", err)
	}
	if len(plan.LostAssocs) != 1 || plan.LostAssocs[0] != "RelOne3" {
		t.Fatalf("expected LostAssocs [RelOne3], got %v", plan.LostAssocs)
	}

	cs := state.NewClientState()
	cs.Insert("Entity2Set", &state.Entity{Type: "Entity2", Attrs: state.Row{
		"Id": cond.Int(1), "EntityAtt2": cond.String("a"), "EntityAtt3": cond.String("b"), "EntityAtt4": cond.String("c"),
	}})
	cs.Insert("Entity2Set", &state.Entity{Type: "Extra", Attrs: state.Row{
		"Id": cond.Int(2), "EntityAtt2": cond.String("d"), "EntityAtt3": cond.String("e"), "EntityAtt4": cond.String("f"),
		"ExtraAtt": cond.String("about-to-be-orphaned"),
	}})
	oldStore, err := orm.Materialize(old.M, old.V, cs)
	if err != nil {
		t.Fatalf("materializing old store: %v", err)
	}
	diff, err := plan.CheckMigration(oldStore)
	if err != nil {
		t.Fatalf("migration check: %v", err)
	}
	if diff == "" {
		t.Fatal("migration of a store holding dropped-type entities must report divergence")
	}
}

func TestStrategyByName(t *testing.T) {
	for name, want := range map[string]string{"": "null", "null": "null", "default": "default", "reject": "reject"} {
		st, err := xver.StrategyByName(name)
		if err != nil || st.Name() != want {
			t.Fatalf("StrategyByName(%q) = %v, %v; want %s", name, st, err, want)
		}
	}
	if _, err := xver.StrategyByName("bogus"); err == nil {
		t.Fatal("unknown strategy name should error")
	}
}
