package xver

import (
	"context"
	"fmt"
	"sort"

	"github.com/ormkit/incmap/internal/exec"
	"github.com/ormkit/incmap/internal/state"
)

// ReadClientStream is ReadClient over a streaming table store: every old
// entity set is read through its version-restricted constructor with the
// streaming executor (rows constructing types the old version does not
// know are skipped mid-stream, never buffered), every old association
// through the new association view. Results are identical to ReadClient
// by construction — both paths share the compiled views, the selection
// theory and cqt.ConstructVisible.
func (p *Plan) ReadClientStream(ctx context.Context, ts exec.TableStore, opts exec.Options) (*state.ClientState, error) {
	env := &exec.Env{Catalog: p.To.M.Catalog(), Store: ts}
	cs := state.NewClientState()
	sets := make([]string, 0, len(p.readViews))
	for s := range p.readViews {
		sets = append(sets, s)
	}
	sort.Strings(sets)
	for _, setName := range sets {
		it, err := exec.OpenView(ctx, env, p.readViews[setName], exec.Visible, opts)
		if err != nil {
			return nil, fmt.Errorf("xver: cross-read view for %s: %w", setName, err)
		}
		ents, err := exec.CollectEntities(it)
		if err != nil {
			return nil, fmt.Errorf("xver: cross-read view for %s: %w", setName, err)
		}
		for _, e := range ents {
			cs.Insert(setName, e)
		}
	}
	assocs := make([]string, 0, len(p.assocViews))
	for a := range p.assocViews {
		assocs = append(assocs, a)
	}
	sort.Strings(assocs)
	for _, a := range assocs {
		it, err := exec.Open(ctx, env, p.assocViews[a].Q, opts)
		if err != nil {
			return nil, fmt.Errorf("xver: cross-read association view for %s: %w", a, err)
		}
		res, err := exec.Collect(it)
		if err != nil {
			return nil, fmt.Errorf("xver: cross-read association view for %s: %w", a, err)
		}
		for _, row := range res.Rows {
			cs.Relate(a, state.AssocPair{Ends: row})
		}
	}
	return cs, nil
}

// CountEntitiesStream streams the version-k projection and returns only
// per-set entity counts — the daemon's version=prev read path, which
// never needs the entities themselves.
func (p *Plan) CountEntitiesStream(ctx context.Context, ts exec.TableStore, opts exec.Options) (map[string]int, error) {
	env := &exec.Env{Catalog: p.To.M.Catalog(), Store: ts}
	out := map[string]int{}
	for setName, v := range p.readViews {
		it, err := exec.OpenView(ctx, env, v, exec.Visible, opts)
		if err != nil {
			return nil, fmt.Errorf("xver: cross-read view for %s: %w", setName, err)
		}
		n := 0
		for {
			batch, ok, err := it.Next()
			if err != nil {
				_ = it.Close()
				return nil, fmt.Errorf("xver: cross-read view for %s: %w", setName, err)
			}
			if !ok {
				break
			}
			n += len(batch)
		}
		if err := it.Close(); err != nil {
			return nil, err
		}
		out[setName] = n
	}
	return out, nil
}
