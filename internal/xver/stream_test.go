package xver_test

import (
	"context"
	"testing"

	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/exec"
	"github.com/ormkit/incmap/internal/modef"
	"github.com/ormkit/incmap/internal/orm"
	"github.com/ormkit/incmap/internal/state"
	"github.com/ormkit/incmap/internal/xver"
)

// TestReadClientStreamEqualsReadClient holds the streaming cross-version
// read to the materializing one on every additive evolution shape: a
// version-k client reading the version-k+1 store sees the same entities
// and associations through either path, including Visible-mode skipping
// of new-only types.
func TestReadClientStreamEqualsReadClient(t *testing.T) {
	cases := []struct {
		name   string
		evolve func(t *testing.T, g xver.Gen) xver.Gen
	}{
		{"add-entity-tph", addEntity(modef.TPH)},
		{"add-entity-tpt", addEntity(modef.TPT)},
		{"add-assoc-fk", addAssoc(edm.Many, edm.ZeroOne)},
		{"add-assoc-jt", addAssoc(edm.Many, edm.Many)},
	}
	ctx := context.Background()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			old, cur := chainGens(t, tc.evolve)
			plan, err := xver.Compile(old, cur, xver.Strategies{})
			if err != nil {
				t.Fatalf("compiling plan: %v", err)
			}
			for seed := uint32(1); seed <= 3; seed++ {
				// A new-version store holding a new-version state: the cross
				// reads must skip new-only rows identically on both paths.
				cs := orm.RandomState(cur.M, seed, 3)
				ss, err := orm.Materialize(cur.M, cur.V, cs)
				if err != nil {
					t.Fatalf("seed %d: materializing new store: %v", seed, err)
				}
				want, err := plan.ReadClient(ss)
				if err != nil {
					t.Fatalf("seed %d: ReadClient: %v", seed, err)
				}
				for _, batch := range []int{1, 3, 0} {
					got, err := plan.ReadClientStream(ctx, exec.RingFromState(ss, 2), exec.Options{BatchSize: batch})
					if err != nil {
						t.Fatalf("seed %d batch %d: ReadClientStream: %v", seed, batch, err)
					}
					if d := state.Diff(want, got); d != "" {
						t.Fatalf("seed %d batch %d: streaming cross-read differs:\n%s", seed, batch, d)
					}
				}
				counts, err := plan.CountEntitiesStream(ctx, exec.NewMapStore(ss), exec.Options{})
				if err != nil {
					t.Fatalf("seed %d: CountEntitiesStream: %v", seed, err)
				}
				for set, ents := range want.Entities {
					if counts[set] != len(ents) {
						t.Fatalf("seed %d: set %s counted %d streaming, %d materializing", seed, set, counts[set], len(ents))
					}
				}
			}
		})
	}
}
