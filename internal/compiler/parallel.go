package compiler

import (
	"context"
	"errors"
	"math"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ormkit/incmap/internal/fault"
	"github.com/ormkit/incmap/internal/faultinject"
	"github.com/ormkit/incmap/internal/obsv"
)

// vtask is one unit of validation work, labelled with the cell span,
// table, or foreign key it checks so a recovered panic can name the
// failing unit. Tasks are ordered exactly as the sequential algorithm
// visits them; a task receives its own ordinal and the shared control
// block so it can stop early once a lower-ordered task has already
// produced the winning error. The context handed to run carries the
// task's span so downstream layers (the containment checker) parent
// their spans under it.
type vtask struct {
	label string
	run   func(ctx context.Context, ctl *vcontrol, ord int64) error
}

// Stop reasons, in increasing precedence order of the final error
// assembly (a genuine validation error always wins over both).
const (
	stopNone int32 = iota
	stopBudget
	stopCtx
)

// vcontrol coordinates deterministic error selection and cooperative
// cancellation across workers. errOrd holds the lowest ordinal that has
// produced an error so far (math.MaxInt64 when none); it only ever
// decreases. stop is latched once the context is cancelled or the
// wall-time budget expires; every task observes it within one cell.
type vcontrol struct {
	errOrd atomic.Int64
	stop   atomic.Int32
	ctx    context.Context
}

func newVControl(ctx context.Context) *vcontrol {
	ctl := &vcontrol{ctx: ctx}
	ctl.errOrd.Store(math.MaxInt64)
	return ctl
}

// cancelled reports whether the task with the given ordinal can no longer
// influence the result: compilation is being stopped (cancellation or
// budget), or some strictly lower-ordered task has already failed and the
// sequential run would never have reached this task's remaining cells.
// Tasks at or below the current error ordinal run to completion while no
// stop is latched, preserving first-error identity.
func (ctl *vcontrol) cancelled(ord int64) bool {
	if ctl.stop.Load() != stopNone {
		return true
	}
	return ord > ctl.errOrd.Load()
}

// latchStop records a stop reason. Cancellation outranks budget
// exhaustion: a cancelled compile reports ctx.Err() even if the budget
// also ran out while stopping.
func (ctl *vcontrol) latchStop(reason int32) {
	for {
		cur := ctl.stop.Load()
		if cur >= reason {
			return
		}
		if ctl.stop.CompareAndSwap(cur, reason) {
			return
		}
	}
}

// watch latches a stop when the context is cancelled or the wall-time
// budget deadline passes. The returned function releases the watcher; it
// must be called before runTasks returns.
func (ctl *vcontrol) watch(deadline time.Time) (release func()) {
	ctxDone := ctl.ctx.Done()
	var timerC <-chan time.Time
	var timer *time.Timer
	if !deadline.IsZero() {
		timer = time.NewTimer(time.Until(deadline))
		timerC = timer.C
	}
	if ctxDone == nil && timerC == nil {
		return func() {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-ctxDone:
				ctl.latchStop(stopCtx)
				ctxDone = nil // latched; keep waiting for release
			case <-timerC:
				ctl.latchStop(stopBudget)
				timerC = nil
			case <-done:
				return
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
		if timer != nil {
			timer.Stop()
		}
	}
}

// runTask executes one task, recovering a panic into a typed
// *fault.PanicError labelled with the task's unit of work, so one
// poisonous cell span or foreign-key check cannot crash the process.
// Each task runs under its own "span-worker" span (recorded into the
// worker's buffer when one is given), ended exactly once on every exit
// path — ok, validation error, cancellation, budget, or panic.
func (c *Compiler) runTask(t vtask, ctl *vcontrol, ord int64, parent *obsv.Span, buf *obsv.Buffer) (err error) {
	mTasks.Add(1)
	sp := parent.ChildIn(buf, "span-worker", obsv.String("task", t.label))
	defer func() {
		if r := recover(); r != nil {
			atomic.AddInt64(&c.Stats.PanicsRecovered, 1)
			mPanics.Add(1)
			err = &fault.PanicError{Where: t.label, Value: r, Stack: debug.Stack()}
			sp.End(obsv.OutcomePanic)
			return
		}
		switch stop := ctl.stop.Load(); {
		case err != nil:
			sp.End(outcome(err))
		case stop == stopCtx:
			sp.End(obsv.OutcomeCancelled)
		case stop == stopBudget:
			sp.End(obsv.OutcomeBudget)
		default:
			sp.End(obsv.OutcomeOK)
		}
	}()
	if err := faultinject.At(faultinject.SiteWorker); err != nil {
		return err
	}
	return t.run(obsv.ContextWithSpan(ctl.ctx, sp), ctl, ord)
}

// runTasks executes the ordered tasks on the given number of workers and
// assembles the final verdict:
//
//   - the error of the lowest-ordered failing task — the error a
//     sequential run returns first — when any task genuinely failed;
//   - ctx.Err() when the context was cancelled (deterministically: a
//     cancelled compile of a valid mapping always reports the
//     cancellation, never a partial verdict);
//   - a *fault.BudgetExceededError when a budget limit stopped the run.
//
// Budget and cancellation errors surfacing from individual tasks (e.g.
// from a containment check) latch the corresponding stop instead of
// competing with validation errors for the first-error ordinal, so
// first-error identity across worker counts is preserved.
func (c *Compiler) runTasks(ctx context.Context, tasks []vtask, workers int, budgetDeadline time.Time, parent *obsv.Span) error {
	ctl := newVControl(ctx)
	release := ctl.watch(budgetDeadline)
	defer release()

	var (
		mu      sync.Mutex
		bestOrd int64 = math.MaxInt64
		bestErr error
	)
	collect := func(ord int64, err error) {
		if err == nil {
			return
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			ctl.latchStop(stopCtx)
			return
		}
		var be *fault.BudgetExceededError
		if errors.As(err, &be) {
			mu.Lock()
			if c.budgetErr == nil {
				c.budgetErr = be
			}
			mu.Unlock()
			ctl.latchStop(stopBudget)
			return
		}
		mu.Lock()
		// A task interrupted by cancellation reports no error, so any
		// error seen here is the task's genuine first error; the lowest
		// ordinal with one matches the sequential run.
		if ord < bestOrd {
			bestOrd, bestErr = ord, err
			ctl.errOrd.Store(ord)
		}
		mu.Unlock()
	}

	if workers <= 1 || len(tasks) <= 1 {
		for ord, t := range tasks {
			if ctl.cancelled(int64(ord)) {
				break
			}
			collect(int64(ord), c.runTask(t, ctl, int64(ord), parent, nil))
			if bestErr != nil {
				break
			}
		}
		return c.finishTasks(ctl, bestErr)
	}

	if workers > len(tasks) {
		workers = len(tasks)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-worker span buffer: tasks record without touching the
			// shared sink; one batch flush at the pool barrier. The pprof
			// label attributes the worker's CPU samples to validation.
			buf := c.tr.Buffer(w + 1)
			defer buf.Flush()
			pprof.Do(ctl.ctx, pprof.Labels("incmap", "validate", "worker", strconv.Itoa(w+1)), func(context.Context) {
				for {
					ord := next.Add(1) - 1
					if ord >= int64(len(tasks)) {
						return
					}
					if ctl.cancelled(ord) {
						if ctl.stop.Load() != stopNone {
							return
						}
						continue
					}
					collect(ord, c.runTask(tasks[ord], ctl, ord, parent, buf))
				}
			})
		}(w)
	}
	wg.Wait()
	return c.finishTasks(ctl, bestErr)
}

// finishTasks turns the control block's final state into the verdict,
// counting cancellations in Stats.
func (c *Compiler) finishTasks(ctl *vcontrol, bestErr error) error {
	if bestErr != nil {
		return bestErr
	}
	switch ctl.stop.Load() {
	case stopCtx:
		atomic.AddInt64(&c.Stats.Cancelled, 1)
		mCancelled.Add(1)
		if err := ctl.ctx.Err(); err != nil {
			return err
		}
		return context.Canceled
	case stopBudget:
		mBudget.Add(1)
		if c.budgetErr != nil {
			return c.budgetErr
		}
		return &fault.BudgetExceededError{
			Op:           "full compile",
			Reason:       "wall time",
			Containments: atomic.LoadInt64(&c.Stats.Containments),
			CellsVisited: atomic.LoadInt64(&c.Stats.CellsVisited),
			Elapsed:      time.Since(c.start),
		}
	}
	return nil
}
