package compiler

import (
	"math"
	"sync"
	"sync/atomic"
)

// vtask is one unit of validation work. Tasks are ordered exactly as the
// sequential algorithm visits them; a task receives its own ordinal and
// the shared control block so it can stop early once a lower-ordered task
// has already produced the winning error.
type vtask func(ctl *vcontrol, ord int64) error

// vcontrol coordinates deterministic error selection across workers.
// errOrd holds the lowest ordinal that has produced an error so far
// (math.MaxInt64 when none); it only ever decreases.
type vcontrol struct {
	errOrd atomic.Int64
}

func newVControl() *vcontrol {
	ctl := &vcontrol{}
	ctl.errOrd.Store(math.MaxInt64)
	return ctl
}

// cancelled reports whether the task with the given ordinal can no longer
// influence the result: some strictly lower-ordered task has already
// failed, and the sequential run would never have reached this task's
// remaining cells. Tasks at or below the current error ordinal always run
// to completion, preserving first-error identity.
func (ctl *vcontrol) cancelled(ord int64) bool {
	return ord > ctl.errOrd.Load()
}

// runTasks executes the ordered tasks on the given number of workers and
// returns the error of the lowest-ordered failing task — the error a
// sequential run returns first. With workers <= 1 it degenerates to the
// plain sequential loop with early exit.
func runTasks(tasks []vtask, workers int) error {
	ctl := newVControl()
	if workers <= 1 || len(tasks) <= 1 {
		for ord, t := range tasks {
			if err := t(ctl, int64(ord)); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	var (
		mu      sync.Mutex
		bestOrd int64 = math.MaxInt64
		bestErr error
		next    atomic.Int64
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ord := next.Add(1) - 1
				if ord >= int64(len(tasks)) {
					return
				}
				if ctl.cancelled(ord) {
					continue
				}
				err := tasks[ord](ctl, ord)
				if err == nil {
					continue
				}
				mu.Lock()
				// A task interrupted by cancellation reports no error, so
				// any error seen here is the task's genuine first error;
				// the lowest ordinal with one matches the sequential run.
				if ord < bestOrd {
					bestOrd, bestErr = ord, err
					ctl.errOrd.Store(ord)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return bestErr
}
