package compiler

import (
	"strings"
	"testing"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/cqt"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/orm"
	"github.com/ormkit/incmap/internal/state"
	"github.com/ormkit/incmap/internal/workload"
)

func TestCompilePaperInitial(t *testing.T) {
	m := workload.PaperInitial()
	views, err := New().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	if views.Query["Person"] == nil || views.Update["HR"] == nil {
		t.Fatalf("missing views: %+v", views)
	}
}

func TestCompilePaperFullAndRoundtrip(t *testing.T) {
	m := workload.PaperFull()
	views, err := New().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, ty := range []string{"Person", "Employee", "Customer"} {
		if views.Query[ty] == nil {
			t.Fatalf("missing query view for %s", ty)
		}
	}
	for _, tab := range []string{"HR", "Emp", "Client"} {
		if views.Update[tab] == nil {
			t.Fatalf("missing update view for %s", tab)
		}
	}
	if views.Assoc["Supports"] == nil {
		t.Fatalf("missing association view")
	}
	if err := orm.Roundtrip(m, views, workload.PaperClientState()); err != nil {
		t.Fatal(err)
	}
}

func TestPersonViewShape(t *testing.T) {
	m := workload.PaperFull()
	views, err := New().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	// The Person view must union the HR/Emp side with the Client side, as
	// in Figure 2 of the paper.
	out := cqt.Format(views.Query["Person"].Q)
	if !strings.Contains(out, "UNION ALL") {
		t.Errorf("Person view lacks UNION ALL:\n%s", out)
	}
	if !strings.Contains(out, "Client") || !strings.Contains(out, "HR") {
		t.Errorf("Person view must read both HR and Client:\n%s", out)
	}
}

func TestEmployeeViewIsJoin(t *testing.T) {
	m := workload.PaperFull()
	views, err := New().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	out := cqt.Format(views.Query["Employee"].Q)
	if !strings.Contains(out, "Emp") || !strings.Contains(out, "HR") {
		t.Errorf("Employee view must join HR and Emp:\n%s", out)
	}
	if strings.Contains(out, "Client") {
		t.Errorf("Employee view must not read Client:\n%s", out)
	}
}

// TestLossyMappingRejected drops the fragment covering Employee's
// Department, which makes the mapping lossy; validation must reject it.
func TestLossyMappingRejected(t *testing.T) {
	m := workload.PaperFull()
	var keep []*frag.Fragment
	for _, f := range m.Frags {
		if f.ID != "phi2" {
			keep = append(keep, f)
		}
	}
	m.Frags = keep
	if _, err := New().Compile(m); err == nil {
		t.Fatal("lossy mapping accepted")
	}
}

// TestUncoveredCellRejected maps only employees with a department, leaving
// department-less employees unmapped.
func TestUncoveredCellRejected(t *testing.T) {
	m := workload.PaperInitial()
	// Restrict phi1 to named persons only: unnamed persons are lost.
	m.Frags[0].ClientCond = cond.NewAnd(
		cond.TypeIs{Type: "Person"},
		cond.NotNull("Name"),
	)
	_, err := New().Compile(m)
	if err == nil {
		t.Fatal("partial mapping accepted")
	}
	if !strings.Contains(err.Error(), "not mapped") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestForeignKeyViolationRejected reproduces the Figure 6 scenario: a TPC
// type whose association end keys land in a table with a foreign key the
// update views cannot guarantee.
func TestForeignKeyViolationRejected(t *testing.T) {
	m := workload.PaperFull()
	// Re-point Client.Eid's foreign key at HR and break the guarantee by
	// mapping Supports to relate Customer (TPC in Client) rather than
	// Employee: make the FK reference a table customers never reach.
	// Simpler: change fragment phi4 to write Eid from Customer_Id, so Eid
	// values are customer ids, which are not in Emp.
	for _, f := range m.Frags {
		if f.ID == "phi4" {
			f.ColOf = map[string]string{"Customer_Id": "Eid", "Employee_Id": "Cid"}
		}
	}
	if _, err := New().Compile(m); err == nil {
		t.Fatal("foreign-key-violating mapping accepted")
	}
}

func TestPartitionedMapping(t *testing.T) {
	// The §3.3 Adult/Young example: one type horizontally partitioned.
	m := partitionedModel(t, true)
	views, err := New().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	// Roundtrip adults and minors.
	cs := personAgeState()
	if err := orm.Roundtrip(m, views, cs); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionedMappingWithHole(t *testing.T) {
	m := partitionedModel(t, false) // leaves age = 18 uncovered
	if _, err := New().Compile(m); err == nil {
		t.Fatal("partition with a hole accepted")
	}
}

func TestStatsAccumulate(t *testing.T) {
	c := New()
	if _, err := c.Compile(workload.PaperFull()); err != nil {
		t.Fatal(err)
	}
	if c.Stats.CellsVisited == 0 || c.Stats.Containments == 0 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestSkipValidationStillGenerates(t *testing.T) {
	c := &Compiler{Opts: Options{SkipValidation: true}}
	views, err := c.Compile(workload.PaperFull())
	if err != nil {
		t.Fatal(err)
	}
	if err := orm.Roundtrip(workload.PaperFull(), views, workload.PaperClientState()); err != nil {
		t.Fatal(err)
	}
}

func TestNaiveCellsAblation(t *testing.T) {
	fast := New()
	if _, err := fast.Compile(workload.PaperFull()); err != nil {
		t.Fatal(err)
	}
	naive := &Compiler{Opts: Options{NaiveCells: true}}
	if _, err := naive.Compile(workload.PaperFull()); err != nil {
		t.Fatal(err)
	}
	if naive.Stats.CellsVisited <= fast.Stats.CellsVisited {
		t.Errorf("naive enumeration should visit more cells: naive=%d pruned=%d",
			naive.Stats.CellsVisited, fast.Stats.CellsVisited)
	}
}

// partitionedModel builds Person(name, age) partitioned over Adult/Young.
func partitionedModel(t *testing.T, covered bool) *frag.Mapping {
	t.Helper()
	m := workload.PartitionedAgeModel()
	if !covered {
		// Shift the adult boundary to leave age = 18 unmapped.
		for _, f := range m.Frags {
			if f.Table == "Adult" {
				f.ClientCond = cond.NewAnd(
					cond.TypeIs{Type: "Person"},
					cond.Cmp{Attr: "Age", Op: cond.OpGe, Val: cond.Int(19)},
				)
			}
		}
	}
	return m
}

func personAgeState() *state.ClientState {
	return workload.PartitionedAgeState()
}
