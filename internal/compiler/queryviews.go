// Package compiler implements full mapping compilation: the baseline the
// paper's incremental compiler is measured against. Following Melnik et
// al. (TODS 2008) and §2.2 of Bernstein et al. (SIGMOD 2013), compilation
// validates that the declarative mapping roundtrips and generates query
// views (client types as views over tables) and update views (tables as
// views over the client schema).
//
// The computational profile matches the paper's: per-table and per-set
// roundtrip analysis enumerates the satisfiable cells of the condition
// space, which is exponential in the number of interacting condition atoms
// (the Figure 4 blow-up for hub-and-rim models mapped TPH), and integrity
// constraints are checked with NP-hard query containment.
package compiler

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/cqt"
	"github.com/ormkit/incmap/internal/fault"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/obsv"
)

// Process-wide metric counters, resolved once so the per-event cost is a
// single striped atomic add. The intern-table gauge is registered here
// because every compilation path loads this package.
var (
	mCompiles     = obsv.Metrics().Counter(obsv.MCompiles)
	mCells        = obsv.Metrics().Counter(obsv.MCompileCells)
	mTasks        = obsv.Metrics().Counter(obsv.MCompileTasks)
	mCacheHits    = obsv.Metrics().Counter(obsv.MCompileCacheHits)
	mCacheMisses  = obsv.Metrics().Counter(obsv.MCompileCacheMisses)
	mCancelled    = obsv.Metrics().Counter(obsv.MCompileCancelled)
	mBudget       = obsv.Metrics().Counter(obsv.MCompileBudget)
	mPanics       = obsv.Metrics().Counter(obsv.MCompilePanics)
	mContainments = obsv.Metrics().Counter(obsv.MCompileContainments)
)

func init() {
	obsv.RegisterGauge(obsv.MInternSize, cond.InternStats)
	obsv.RegisterGauge(obsv.MInternEvictions, cond.InternEvictions)
	// The prover counters live in cond (which cannot import obsv) and are
	// sampled as gauges at snapshot time.
	obsv.RegisterGauge(obsv.MSatPropagations, func() int64 { return cond.SolverTotals().Propagations })
	obsv.RegisterGauge(obsv.MSatConflicts, func() int64 { return cond.SolverTotals().Conflicts })
	obsv.RegisterGauge(obsv.MSatLearned, func() int64 { return cond.SolverTotals().Learned })
	obsv.RegisterGauge(obsv.MSatBackjumps, func() int64 { return cond.SolverTotals().Backjumps })
	obsv.RegisterGauge(obsv.MSatLemmaHits, func() int64 { return cond.SolverTotals().LemmaHits })
	obsv.RegisterGauge(obsv.MSatLemmasStored, func() int64 { return cond.SolverTotals().LemmasStored })
}

// Options tunes the compiler; the zero value is the standard configuration.
type Options struct {
	// SkipValidation generates views without the roundtrip and constraint
	// analysis. Used to separate generation cost from validation cost.
	SkipValidation bool
	// NoSimplify disables query-tree simplification of generated views and
	// of containment inputs (the simplifier ablation).
	NoSimplify bool
	// NaiveCells disables theory pruning during cell enumeration, visiting
	// all 2^n boolean assignments (the cell-pruning ablation).
	NaiveCells bool
	// Parallelism is the number of validation workers. 0 means
	// runtime.GOMAXPROCS(0); 1 runs the exact sequential algorithm. Any
	// value produces the same views, the same first validation error, and
	// the same error text as the sequential run: the cell spaces and
	// foreign-key checks are partitioned into ordered tasks and the error
	// of the lowest-ordered failing task wins.
	Parallelism int
	// SatCache, when non-nil, memoizes satisfiability/implication verdicts
	// across compilations. When nil each compilation uses a private cache,
	// which still deduplicates the (heavily repetitive) queries within one
	// compile.
	SatCache *cond.SatCache
	// Budget bounds the validation work of one compilation. When a limit
	// is reached, CompileCtx returns a *fault.BudgetExceededError carrying
	// the partial Stats, which callers can distinguish from a validation
	// failure (invalid mapping) and respond to — e.g. by retrying with a
	// larger budget or queueing a full recompilation.
	Budget fault.Budget
	// Tracer, when non-nil, records the compilation as a hierarchical span
	// tree (Compile → Validate → span-worker → containment-check). When nil
	// the process-wide tracer installed with obsv.SetDefault is used;
	// resolving it costs one atomic load per compilation, and with no
	// tracer installed anywhere no spans are created at all.
	Tracer *obsv.Tracer
}

// Stats reports the work a compilation performed. Counters are plain int64s
// updated atomically, so a Stats value can be copied freely once the
// compilation has finished.
type Stats struct {
	CellsVisited   int64
	Implications   int64
	Containments   int64
	EquivalenceOps int64
	// CacheHits and CacheMisses count satisfiability-cache lookups issued by
	// this compilation (view assembly, validation, and containment checks).
	CacheHits   int64
	CacheMisses int64
	// Workers is the validation worker count the compilation ran with.
	Workers int64
	// Cancelled counts compilations stopped by context cancellation or
	// deadline expiry; PanicsRecovered counts worker panics recovered into
	// typed errors instead of crashing the process. Both are merged
	// atomically across workers.
	Cancelled       int64
	PanicsRecovered int64
}

// Compiler compiles mappings into views.
type Compiler struct {
	Opts  Options
	Stats Stats

	cache *cond.SatCache
	// start anchors the wall-time budget; set at CompileCtx entry.
	start time.Time
	// budgetErr records the first budget error a validation task surfaced
	// (the containment checker builds richer errors than the watcher).
	budgetErr *fault.BudgetExceededError
	// tr is the resolved tracer (nil when tracing is off) and root the
	// in-flight compilation's root span; both are set at CompileCtx entry.
	tr   *obsv.Tracer
	root *obsv.Span
}

// New returns a compiler with default options.
func New() *Compiler { return &Compiler{} }

// workers resolves Options.Parallelism.
func (c *Compiler) workers() int {
	if c.Opts.Parallelism > 0 {
		return c.Opts.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// satCache resolves the decision cache: the shared one from Options, or a
// lazily created private one.
func (c *Compiler) satCache() *cond.SatCache {
	if c.cache == nil {
		if c.Opts.SatCache != nil {
			c.cache = c.Opts.SatCache
		} else {
			c.cache = cond.NewSatCache()
		}
	}
	return c.cache
}

func (c *Compiler) addEquivalenceOp() { atomic.AddInt64(&c.Stats.EquivalenceOps, 1) }

func (c *Compiler) countCache(hit bool) {
	if hit {
		atomic.AddInt64(&c.Stats.CacheHits, 1)
		mCacheHits.Add(1)
	} else {
		atomic.AddInt64(&c.Stats.CacheMisses, 1)
		mCacheMisses.Add(1)
	}
}

// outcome refines the generic fault classification with the compiler's
// validation verdict: a *ValidationError means the mapping is invalid, a
// different label than an infrastructure error.
func outcome(err error) string {
	var ve *ValidationError
	if errors.As(err, &ve) {
		return obsv.OutcomeInvalid
	}
	return fault.Outcome(err)
}

// satisfiable, implies, equivalent and disjoint are the compiler's
// cache-backed decision procedures.
func (c *Compiler) satisfiable(t cond.Theory, x cond.Expr) bool {
	v, hit := c.satCache().SatisfiableHit(t, x)
	c.countCache(hit)
	return v
}

func (c *Compiler) implies(t cond.Theory, a, b cond.Expr) bool {
	v, hit := c.satCache().ImpliesHit(t, a, b)
	c.countCache(hit)
	return v
}

func (c *Compiler) equivalent(t cond.Theory, a, b cond.Expr) bool {
	return c.implies(t, a, b) && c.implies(t, b, a)
}

func (c *Compiler) disjoint(t cond.Theory, a, b cond.Expr) bool {
	v, hit := c.satCache().DisjointHit(t, a, b)
	c.countCache(hit)
	return v
}

// Compile validates the mapping and generates its query and update views.
// A validation failure returns an error describing the first violated
// condition; the mapping is then not valid (it does not roundtrip).
func (c *Compiler) Compile(m *frag.Mapping) (*frag.Views, error) {
	return c.CompileCtx(context.Background(), m)
}

// CompileCtx is Compile with cooperative cancellation and budget
// enforcement. Cancellation is observed between view generations, between
// validation tasks and — inside the exponential cell walks — within one
// cell, so a timed-out or user-cancelled compile stops promptly and
// returns ctx.Err() deterministically. When Options.Budget is limited, a
// compilation that exhausts it returns a *fault.BudgetExceededError
// carrying the partial work counters; both outcomes are distinguishable
// from a validation failure, which reports the mapping as invalid.
func (c *Compiler) CompileCtx(ctx context.Context, m *frag.Mapping) (views *frag.Views, err error) {
	if err := m.CheckWellFormed(); err != nil {
		return nil, err
	}
	c.start = time.Now()
	c.tr = obsv.Resolve(c.Opts.Tracer)
	mCompiles.Add(1)
	c.root = c.tr.SpanCtx(ctx, "Compile",
		obsv.String("workers", strconv.Itoa(c.workers())),
		obsv.String("tables", strconv.Itoa(len(m.MappedTables()))),
		obsv.String("fragments", strconv.Itoa(len(m.Frags))))
	defer func() { c.root.End(outcome(err)) }()
	views = frag.NewViews()
	cat := m.Catalog()
	c.satCache()
	c.Stats.Workers = int64(c.workers())

	checkCtx := func() error {
		if err := ctx.Err(); err != nil {
			atomic.AddInt64(&c.Stats.Cancelled, 1)
			mCancelled.Add(1)
			return err
		}
		return nil
	}
	if err := checkCtx(); err != nil {
		return nil, err
	}

	// Update views come first: validation issues containment checks over
	// them.
	err = c.phase("update-views", func() error {
		for _, tn := range m.MappedTables() {
			if err := checkCtx(); err != nil {
				return err
			}
			v, err := c.updateView(m, tn)
			if err != nil {
				return fmt.Errorf("update view for %s: %w", tn, err)
			}
			if !c.Opts.NoSimplify {
				v.Q = cqt.Simplify(cat, v.Q)
			}
			views.Update[tn] = v
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	if !c.Opts.SkipValidation {
		if err := c.validate(ctx, m, views); err != nil {
			return nil, err
		}
	}

	err = c.phase("query-views", func() error {
		for _, set := range m.Client.Sets() {
			if len(m.FragsOnSet(set.Name)) == 0 {
				continue
			}
			types := append([]string{set.Type}, m.Client.Descendants(set.Type)...)
			for _, ty := range types {
				if err := checkCtx(); err != nil {
					return err
				}
				v, err := c.queryView(m, set.Name, ty)
				if err != nil {
					return fmt.Errorf("query view for %s: %w", ty, err)
				}
				if !c.Opts.NoSimplify {
					v.Q = cqt.Simplify(cat, v.Q)
				}
				views.Query[ty] = v
			}
		}
		for _, a := range m.Client.Associations() {
			f := m.FragForAssoc(a.Name)
			if f == nil {
				continue
			}
			views.Assoc[a.Name] = assocQueryView(m, f)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return views, nil
}

// phase runs fn under a child span of the compilation root, labelling the
// span with fn's verdict.
func (c *Compiler) phase(name string, fn func() error) error {
	sp := c.root.Child(name)
	err := fn()
	sp.End(outcome(err))
	return err
}

// Assembly builds the query reconstructing entities of exactly the given
// concrete type from the current fragments. It is exported for the
// incremental compiler, which uses it when an SMO (such as AddEntityPart)
// needs a freshly assembled base query for the new type.
func (c *Compiler) Assembly(m *frag.Mapping, setName, ty string) (cqt.Expr, error) {
	q, _, err := c.assembly(m, setName, ty)
	return q, err
}

// QueryView is the exported form of queryView, used by the incremental
// compiler to regenerate the views of the types in an SMO's neighbourhood
// without a full compilation.
func (c *Compiler) QueryView(m *frag.Mapping, setName, ty string) (*cqt.View, error) {
	return c.queryView(m, setName, ty)
}

// UpdateView is the exported form of updateView, used by the incremental
// compiler to regenerate a single affected table's update view.
func (c *Compiler) UpdateView(m *frag.Mapping, table string) (*cqt.View, error) {
	return c.updateView(m, table)
}

// typeFlag names the provenance flag column for a type and typeTag the
// union discriminant column of generated query views.
const typeTag = "__type"

func typeFlag(ty string) string { return "__is_" + ty }

// fragTableQuery builds π_{f(α) AS α}(σ_χ(T)) for a fragment, optionally
// restricted to a subset of its attributes.
func fragTableQuery(f *frag.Fragment, attrs []string) cqt.Expr {
	if attrs == nil {
		attrs = f.Attrs
	}
	cols := make([]cqt.ProjCol, 0, len(attrs))
	for _, a := range attrs {
		cols = append(cols, cqt.ColAs(f.ColOf[a], a))
	}
	return cqt.Project{
		In:   cqt.Select{In: cqt.ScanTable{Table: f.Table}, Cond: f.StoreCond},
		Cols: cols,
	}
}

// applicable reports whether a fragment's client condition can hold for
// entities of exactly the given concrete type.
func (c *Compiler) applicable(m *frag.Mapping, setName string, f *frag.Fragment, ty string) bool {
	atomic.AddInt64(&c.Stats.EquivalenceOps, 1)
	th := m.Client.TheoryFor(setName)
	return c.satisfiable(th, cond.NewAnd(f.ClientCond, cond.TypeIs{Type: ty, Only: true}))
}

// assembly builds the query that reconstructs the attribute values of
// entities of exactly the given concrete type, from the fragments
// applicable to it. It returns the query (projecting the type's attributes)
// and the set of attributes it could not cover (to be reported by
// validation).
func (c *Compiler) assembly(m *frag.Mapping, setName, ty string) (cqt.Expr, map[string]bool, error) {
	th := m.Client.TheoryFor(setName)
	only := cond.Expr(cond.TypeIs{Type: ty, Only: true})
	attrs := m.Client.AttrNames(ty)
	key := m.Client.KeyOf(ty)

	var common []*frag.Fragment
	type group struct {
		frags []*frag.Fragment
		cond  cond.Expr // representative restricted condition
	}
	var groups []*group
	for _, f := range m.FragsOnSet(setName) {
		if !c.applicable(m, setName, f, ty) {
			continue
		}
		restricted := cond.NewAnd(f.ClientCond, only)
		atomic.AddInt64(&c.Stats.EquivalenceOps, 1)
		if c.implies(th, only, f.ClientCond) {
			common = append(common, f)
			continue
		}
		placed := false
		for _, g := range groups {
			atomic.AddInt64(&c.Stats.EquivalenceOps, 1)
			if c.equivalent(th, g.cond, restricted) {
				g.frags = append(g.frags, f)
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, &group{frags: []*frag.Fragment{f}, cond: restricted})
		}
	}
	if len(common) == 0 && len(groups) == 0 {
		return nil, nil, fmt.Errorf("no fragment maps entities of type %s", ty)
	}

	missing := map[string]bool{}
	branch := func(frags []*frag.Fragment, fixed map[string]cond.Value) (cqt.Expr, bool) {
		covered := map[string]bool{}
		var q cqt.Expr
		for _, f := range frags {
			// Project only this type's attributes the fragment maps and
			// that are not yet covered, always keeping the key for joins.
			var proj []string
			for _, a := range f.Attrs {
				if m.Client.HasAttr(ty, a) && (!covered[a] || isKeyAttr(key, a)) {
					proj = append(proj, a)
				}
			}
			if len(proj) == 0 {
				continue
			}
			fq := fragTableQuery(f, proj)
			if q == nil {
				q = fq
			} else {
				on := make([][2]string, 0, len(key))
				for _, k := range key {
					on = append(on, [2]string{k, k})
				}
				q = cqt.Join{Kind: cqt.Inner, L: q, R: fq, On: on}
			}
			for _, a := range proj {
				covered[a] = true
			}
		}
		if q == nil {
			return nil, false
		}
		// Final projection: all attributes of the type, with fixed
		// constants from the branch condition and NULL padding for
		// attributes nothing covers (validation reports those).
		cols := make([]cqt.ProjCol, 0, len(attrs))
		for _, a := range attrs {
			switch {
			case covered[a]:
				cols = append(cols, cqt.Col(a))
			case hasFixed(fixed, a):
				cols = append(cols, cqt.LitAs(cqt.Const(fixed[a]), a))
			default:
				attr, _ := m.Client.Attr(ty, a)
				cols = append(cols, cqt.LitAs(cqt.NullOf(attr.Type), a))
				missing[a] = true
			}
		}
		return cqt.Project{In: q, Cols: cols}, true
	}

	if len(groups) == 0 {
		q, ok := branch(common, nil)
		if !ok {
			return nil, nil, fmt.Errorf("no fragment maps entities of type %s", ty)
		}
		return q, missing, nil
	}

	var branches []cqt.Expr
	for _, g := range groups {
		fixed := fixedConstants(g.frags)
		q, ok := branch(append(append([]*frag.Fragment{}, common...), g.frags...), fixed)
		if !ok {
			continue
		}
		branches = append(branches, q)
	}
	if len(branches) == 0 {
		return nil, nil, fmt.Errorf("no fragment maps entities of type %s", ty)
	}
	if len(branches) == 1 {
		return branches[0], missing, nil
	}
	return cqt.UnionAll{Inputs: branches}, missing, nil
}

func isKeyAttr(key []string, a string) bool {
	for _, k := range key {
		if k == a {
			return true
		}
	}
	return false
}

func hasFixed(fixed map[string]cond.Value, a string) bool {
	_, ok := fixed[a]
	return ok
}

// fixedConstants extracts attribute values fixed by the client conditions
// of a fragment group: top-level equality conjuncts A = c (the §3.3
// gender = 'M' reasoning).
func fixedConstants(frags []*frag.Fragment) map[string]cond.Value {
	out := map[string]cond.Value{}
	for _, f := range frags {
		collectEqualities(f.ClientCond, out)
	}
	return out
}

func collectEqualities(e cond.Expr, out map[string]cond.Value) {
	switch v := e.(type) {
	case cond.Cmp:
		if v.Op == cond.OpEq {
			out[v.Attr] = v.Val
		}
	case *cond.And:
		for _, x := range v.Xs {
			collectEqualities(x, out)
		}
	}
}

// queryView builds the (Q | τ) query view for one entity type: the union,
// over the concrete types at or below it, of that type's assembly filtered
// to rows not claimed by a deeper type, with provenance flags driving the
// constructor — the LOJ/UNION ALL/CASE shape of Figure 2 in the paper.
func (c *Compiler) queryView(m *frag.Mapping, setName, ty string) (*cqt.View, error) {
	set := m.Client.Set(setName)
	outAttrs := cqt.SetCols(m.Client, set)
	key := m.Client.KeyOf(set.Type)

	var branches []cqt.Expr
	var cases []cqt.Case
	for _, ct := range m.Client.ConcreteIn(ty) {
		asm, _, err := c.assembly(m, setName, ct)
		if err != nil {
			return nil, err
		}
		// Exclude rows that belong to a strictly deeper concrete type:
		// left-outer-join each descendant's assembly (keyed detector) and
		// require its flag NULL.
		q := asm
		var excl []cond.Expr
		for _, dt := range m.Client.ConcreteIn(ct) {
			if dt == ct {
				continue
			}
			dasm, _, err := c.assembly(m, setName, dt)
			if err != nil {
				return nil, err
			}
			flag := typeFlag(dt)
			detCols := make([]cqt.ProjCol, 0, len(key)+1)
			for _, k := range key {
				detCols = append(detCols, cqt.Col(k))
			}
			detCols = append(detCols, cqt.LitAs(cqt.Const(cond.Bool(true)), flag))
			det := cqt.Project{In: dasm, Cols: detCols}
			on := make([][2]string, 0, len(key))
			for _, k := range key {
				on = append(on, [2]string{k, k})
			}
			q = cqt.Join{Kind: cqt.LeftOuter, L: q, R: det, On: on}
			excl = append(excl, cond.Null{Attr: flag})
		}
		if len(excl) > 0 {
			q = cqt.Select{In: q, Cond: cond.NewAnd(excl...)}
		}
		// Align to the set-wide output schema and tag the branch.
		tyAttrs := map[string]bool{}
		for _, a := range m.Client.AttrNames(ct) {
			tyAttrs[a] = true
		}
		cols := make([]cqt.ProjCol, 0, len(outAttrs)+1)
		for _, a := range outAttrs {
			if tyAttrs[a] {
				cols = append(cols, cqt.Col(a))
			} else {
				kind := attrKindInSet(m, set.Type, a)
				cols = append(cols, cqt.LitAs(cqt.NullOf(kind), a))
			}
		}
		cols = append(cols, cqt.LitAs(cqt.Const(cond.String(ct)), typeTag))
		branches = append(branches, cqt.Project{In: q, Cols: cols})

		attrMap := map[string]string{}
		for _, a := range m.Client.AttrNames(ct) {
			attrMap[a] = a
		}
		cases = append(cases, cqt.Case{
			When:  cond.Cmp{Attr: typeTag, Op: cond.OpEq, Val: cond.String(ct)},
			Type:  ct,
			Attrs: attrMap,
		})
	}
	if len(branches) == 0 {
		return nil, fmt.Errorf("type %s has no concrete types", ty)
	}
	var q cqt.Expr = cqt.UnionAll{Inputs: branches}
	if len(branches) == 1 {
		q = branches[0]
	}
	return &cqt.View{Q: q, Cases: cases}, nil
}

func attrKindInSet(m *frag.Mapping, rootType, attr string) cond.Kind {
	for _, ty := range append([]string{rootType}, m.Client.Descendants(rootType)...) {
		if a, ok := m.Client.Attr(ty, attr); ok {
			return a.Type
		}
	}
	return cond.KindString
}

// assocQueryView builds the query view for an association from its single
// fragment (§3.2.1).
func assocQueryView(m *frag.Mapping, f *frag.Fragment) *cqt.View {
	cols := make([]cqt.ProjCol, 0, len(f.Attrs))
	for _, a := range f.Attrs {
		cols = append(cols, cqt.ColAs(f.ColOf[a], a))
	}
	return &cqt.View{Q: cqt.Project{
		In:   cqt.Select{In: cqt.ScanTable{Table: f.Table}, Cond: f.StoreCond},
		Cols: cols,
	}}
}
