package compiler

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/fault"
	"github.com/ormkit/incmap/internal/faultinject"
	"github.com/ormkit/incmap/internal/obsv"
	"github.com/ormkit/incmap/internal/workload"
)

// checkSpanTree asserts structural consistency of a recorded span set:
// exactly one root named rootName, every parent reference resolves to a
// recorded span, every span carries an outcome and a non-negative
// duration, and the tracer reports no leaked or double-ended spans.
func checkSpanTree(t *testing.T, tr *obsv.Tracer, spans []obsv.SpanData, rootName string) {
	t.Helper()
	if open := tr.OpenSpans(); open != 0 {
		t.Fatalf("%d spans were never ended", open)
	}
	if d := tr.DoubleEnds(); d != 0 {
		t.Fatalf("%d spans were ended more than once", d)
	}
	byID := map[uint64]obsv.SpanData{}
	for _, s := range spans {
		if _, dup := byID[s.ID]; dup {
			t.Fatalf("span id %d recorded twice", s.ID)
		}
		byID[s.ID] = s
	}
	roots := 0
	for _, s := range spans {
		if s.Parent == 0 {
			roots++
			if s.Name != rootName {
				t.Fatalf("root span is %q, want %q", s.Name, rootName)
			}
			continue
		}
		if _, ok := byID[s.Parent]; !ok {
			t.Fatalf("span %q (id %d) has unrecorded parent %d", s.Name, s.ID, s.Parent)
		}
	}
	if roots != 1 {
		t.Fatalf("%d root spans, want 1", roots)
	}
	for _, s := range spans {
		if s.Outcome == "" {
			t.Fatalf("span %q has no outcome", s.Name)
		}
		if s.Dur < 0 {
			t.Fatalf("span %q has negative duration %v", s.Name, s.Dur)
		}
	}
}

func countByName(spans []obsv.SpanData, name string) int {
	n := 0
	for _, s := range spans {
		if s.Name == name {
			n++
		}
	}
	return n
}

func outcomesOf(spans []obsv.SpanData, name string) map[string]int {
	out := map[string]int{}
	for _, s := range spans {
		if s.Name == name {
			out[s.Outcome]++
		}
	}
	return out
}

// TestTraceParallelValidationConsistentTree compiles with many workers and
// a recording sink and checks the span tree is structurally consistent —
// worker spans recorded through per-worker buffers all land under the
// Validate span with correct parent links. Run under -race this also
// checks the sink handoff at the pool barrier.
func TestTraceParallelValidationConsistentTree(t *testing.T) {
	sink := &obsv.RecordingSink{}
	tr := obsv.New(sink)
	m := workload.HubRim(workload.HubRimOptions{N: 2, M: 4, TPH: true})
	c := New()
	c.Opts.Parallelism = 8
	c.Opts.Tracer = tr
	if _, err := c.CompileCtx(context.Background(), m); err != nil {
		t.Fatalf("compile failed: %v", err)
	}
	spans := sink.Spans()
	checkSpanTree(t, tr, spans, "Compile")
	if n := countByName(spans, "Validate"); n != 1 {
		t.Fatalf("%d Validate spans, want 1", n)
	}
	workers := countByName(spans, "span-worker")
	if workers == 0 {
		t.Fatal("no span-worker spans recorded")
	}
	// Every span-worker span must be parented under the Validate span.
	var validateID uint64
	for _, s := range spans {
		if s.Name == "Validate" {
			validateID = s.ID
		}
	}
	for _, s := range spans {
		if s.Name == "span-worker" && s.Parent != validateID {
			t.Fatalf("span-worker %d parented under %d, want Validate %d", s.ID, s.Parent, validateID)
		}
		if s.Name == "span-worker" && s.Outcome != obsv.OutcomeOK {
			t.Fatalf("span-worker outcome %q, want ok on a clean compile", s.Outcome)
		}
	}
	// Containment-check spans nest under worker spans via the context; the
	// TPH hub-rim validates through cell analysis alone, so compile the
	// paper mapping (which issues foreign-key containment checks) for this.
	sink2 := &obsv.RecordingSink{}
	tr2 := obsv.New(sink2)
	c2 := New()
	c2.Opts.Parallelism = 8
	c2.Opts.Tracer = tr2
	if _, err := c2.CompileCtx(context.Background(), workload.PaperFull()); err != nil {
		t.Fatalf("paper compile failed: %v", err)
	}
	spans2 := sink2.Spans()
	checkSpanTree(t, tr2, spans2, "Compile")
	if countByName(spans2, "containment-check") == 0 {
		t.Fatal("no containment-check spans recorded")
	}
	workerIDs := map[uint64]bool{}
	for _, s := range spans2 {
		if s.Name == "span-worker" {
			workerIDs[s.ID] = true
		}
	}
	for _, s := range spans2 {
		if s.Name == "containment-check" && !workerIDs[s.Parent] {
			t.Fatalf("containment-check %d not parented under a span-worker", s.ID)
		}
	}
}

// TestTraceReconcilesWallTime checks the root Compile span's duration
// accounts for the compile's measured wall time: the span must not exceed
// the end-to-end measurement and must cover most of it, so per-phase
// breakdowns in traces (EXPERIMENTS.md) can be trusted against externally
// timed results like BENCH_fig4.json.
func TestTraceReconcilesWallTime(t *testing.T) {
	sink := &obsv.RecordingSink{}
	tr := obsv.New(sink)
	m := workload.HubRim(workload.HubRimOptions{N: 2, M: 4, TPH: true})
	c := New()
	c.Opts.Tracer = tr
	begin := time.Now()
	if _, err := c.CompileCtx(context.Background(), m); err != nil {
		t.Fatalf("compile failed: %v", err)
	}
	wall := time.Since(begin)
	var root obsv.SpanData
	for _, s := range sink.Spans() {
		if s.Parent == 0 && s.Name == "Compile" {
			root = s
		}
	}
	if root.Name == "" {
		t.Fatal("no root Compile span")
	}
	if root.Dur > wall {
		t.Fatalf("root span %v exceeds measured wall time %v", root.Dur, wall)
	}
	if root.Dur < wall/2 {
		t.Fatalf("root span %v covers under half of wall time %v", root.Dur, wall)
	}
}

// TestTraceCancellationClosesAllSpans cancels a compile mid-validation and
// checks every opened span was still ended exactly once, with the root
// marked cancelled.
func TestTraceCancellationClosesAllSpans(t *testing.T) {
	sink := &obsv.RecordingSink{}
	tr := obsv.New(sink)
	m := workload.HubRim(workload.HubRimOptions{N: 3, M: 5, TPH: true})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	c := New()
	c.Opts.Parallelism = 4
	c.Opts.Tracer = tr
	_, err := c.CompileCtx(ctx, m)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	spans := sink.Spans()
	checkSpanTree(t, tr, spans, "Compile")
	roots := outcomesOf(spans, "Compile")
	if roots[obsv.OutcomeCancelled] != 1 {
		t.Fatalf("Compile outcomes = %v, want one %q", roots, obsv.OutcomeCancelled)
	}
}

// TestTraceBudgetClosesAllSpans exhausts the containment budget and checks
// span accounting survives the abort.
func TestTraceBudgetClosesAllSpans(t *testing.T) {
	sink := &obsv.RecordingSink{}
	tr := obsv.New(sink)
	c := New()
	c.Opts.Budget = fault.Budget{MaxContainments: 1}
	c.Opts.Tracer = tr
	var be *fault.BudgetExceededError
	if _, err := c.CompileCtx(context.Background(), workload.PaperFull()); !errors.As(err, &be) {
		t.Fatalf("err = %v, want *fault.BudgetExceededError", err)
	}
	spans := sink.Spans()
	checkSpanTree(t, tr, spans, "Compile")
	roots := outcomesOf(spans, "Compile")
	if roots[obsv.OutcomeBudget] != 1 {
		t.Fatalf("Compile outcomes = %v, want one %q", roots, obsv.OutcomeBudget)
	}
}

// TestTraceWorkerPanicClosesAllSpans injects a panic into a validation
// worker (via faultinject, as the fault-tolerance tests do) and checks the
// panicking task's span is ended with the panic outcome and nothing leaks.
func TestTraceWorkerPanicClosesAllSpans(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			deactivate := faultinject.Activate(faultinject.Plan{Rules: []faultinject.Rule{
				{Site: faultinject.SiteWorker, Kind: faultinject.KindPanic, Nth: 2},
			}})
			defer deactivate()
			sink := &obsv.RecordingSink{}
			tr := obsv.New(sink)
			c := New()
			c.Opts.Parallelism = workers
			c.Opts.Tracer = tr
			var pe *fault.PanicError
			if _, err := c.CompileCtx(context.Background(), workload.PaperFull()); !errors.As(err, &pe) {
				t.Fatalf("workers=%d: err = %v, want *fault.PanicError", workers, err)
			}
			spans := sink.Spans()
			checkSpanTree(t, tr, spans, "Compile")
			tasks := outcomesOf(spans, "span-worker")
			if tasks[obsv.OutcomePanic] == 0 {
				t.Fatalf("workers=%d: span-worker outcomes = %v, want a %q", workers, tasks, obsv.OutcomePanic)
			}
			roots := outcomesOf(spans, "Compile")
			if roots[obsv.OutcomePanic] != 1 {
				t.Fatalf("workers=%d: Compile outcomes = %v, want one %q", workers, roots, obsv.OutcomePanic)
			}
		}()
	}
}

// TestTraceRejectedMappingOutcome compiles a mapping the compiler rejects
// (overlapping fragments on one table) and checks spans still close
// exactly once, with a non-ok root outcome.
func TestTraceRejectedMappingOutcome(t *testing.T) {
	m := workload.PartitionedAgeModel()
	for _, f := range m.Frags {
		if f.Table == "Adult" {
			f.ClientCond = cond.NewAnd(
				cond.TypeIs{Type: "Person"},
				cond.Cmp{Attr: "Age", Op: cond.OpGe, Val: cond.Int(10)},
			)
		}
	}
	for _, f := range m.Frags {
		f.Table = "Adult"
	}
	sink := &obsv.RecordingSink{}
	tr := obsv.New(sink)
	c := New()
	c.Opts.Tracer = tr
	if _, err := c.CompileCtx(context.Background(), m); err == nil {
		t.Fatal("overlapping fragments on one table accepted")
	}
	spans := sink.Spans()
	checkSpanTree(t, tr, spans, "Compile")
	roots := outcomesOf(spans, "Compile")
	if roots[obsv.OutcomeOK] != 0 {
		t.Fatalf("Compile outcomes = %v, want non-ok", roots)
	}
}
