package compiler

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/ormkit/incmap/internal/fault"
	"github.com/ormkit/incmap/internal/faultinject"
	"github.com/ormkit/incmap/internal/workload"
)

// TestCompileCancelDeadlineTPH is the acceptance check of the cancellation
// tentpole: compiling the N=3, M=5 TPH hub-and-rim model — the Figure 4
// blow-up, minutes of cell enumeration — under a 50ms deadline must return
// context.DeadlineExceeded within twice the deadline, not hang or panic.
func TestCompileCancelDeadlineTPH(t *testing.T) {
	m := workload.HubRim(workload.HubRimOptions{N: 3, M: 5, TPH: true})
	const deadline = 50 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	c := New()
	start := time.Now()
	views, err := c.CompileCtx(ctx, m)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if views != nil {
		t.Fatal("cancelled compile returned views")
	}
	if elapsed > 2*deadline {
		t.Fatalf("compile took %v to observe a %v deadline (bound: %v)", elapsed, deadline, 2*deadline)
	}
	if c.Stats.Cancelled == 0 {
		t.Fatal("Stats.Cancelled not incremented")
	}
}

func TestCompileCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := New()
	views, err := c.CompileCtx(ctx, workload.PaperFull())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if views != nil {
		t.Fatal("cancelled compile returned views")
	}
}

// TestCompileCancelParallelWorkers cancels a parallel compile mid-
// validation and checks the workers all drain: the deterministic verdict
// is ctx.Err() regardless of worker count or which cell each worker was
// visiting.
func TestCompileCancelParallelWorkers(t *testing.T) {
	m := workload.HubRim(workload.HubRimOptions{N: 3, M: 4, TPH: true})
	for _, workers := range []int{1, 2, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(10 * time.Millisecond)
			cancel()
		}()
		c := New()
		c.Opts.Parallelism = workers
		views, err := c.CompileCtx(ctx, m)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if views != nil {
			t.Fatalf("workers=%d: cancelled compile returned views", workers)
		}
	}
}

func TestCompileBudgetMaxContainments(t *testing.T) {
	// The paper-full mapping issues foreign-key containment checks; a
	// budget of one is exhausted by the second.
	c := New()
	c.Opts.Budget = fault.Budget{MaxContainments: 1}
	views, err := c.Compile(workload.PaperFull())
	var be *fault.BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *fault.BudgetExceededError", err)
	}
	if views != nil {
		t.Fatal("budget-stopped compile returned views")
	}
	if be.Containments < 1 {
		t.Fatalf("partial stats missing: %+v", be)
	}
	if be.Reason != "containments" {
		t.Fatalf("Reason = %q, want containments", be.Reason)
	}
}

func TestCompileBudgetMaxWallTime(t *testing.T) {
	m := workload.HubRim(workload.HubRimOptions{N: 3, M: 5, TPH: true})
	c := New()
	c.Opts.Budget = fault.Budget{MaxWallTime: 30 * time.Millisecond}
	start := time.Now()
	views, err := c.CompileCtx(context.Background(), m)
	elapsed := time.Since(start)
	var be *fault.BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *fault.BudgetExceededError", err)
	}
	if views != nil {
		t.Fatal("budget-stopped compile returned views")
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("wall-time budget of 30ms observed only after %v", elapsed)
	}
}

// TestCompileBudgetDistinguishableFromInvalid checks the property the
// budget exists for: a budget stop must not read as "invalid mapping".
func TestCompileBudgetDistinguishableFromInvalid(t *testing.T) {
	c := New()
	c.Opts.Budget = fault.Budget{MaxContainments: 1}
	_, err := c.Compile(workload.PaperFull())
	var be *fault.BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want budget error", err)
	}
	if strings.Contains(err.Error(), "not contained") {
		t.Fatalf("budget error reads like a validation verdict: %v", err)
	}
	// The same mapping with no budget compiles fine.
	if _, err := New().Compile(workload.PaperFull()); err != nil {
		t.Fatalf("unbudgeted compile failed: %v", err)
	}
}

// TestCompileFaultWorkerPanicIsolated injects a panic into a validation
// worker and checks it surfaces as a typed, labelled error instead of
// crashing the process, for both sequential and parallel pools.
func TestCompileFaultWorkerPanicIsolated(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			deactivate := faultinject.Activate(faultinject.Plan{Rules: []faultinject.Rule{
				{Site: faultinject.SiteWorker, Kind: faultinject.KindPanic, Nth: 2},
			}})
			defer deactivate()
			c := New()
			c.Opts.Parallelism = workers
			views, err := c.Compile(workload.PaperFull())
			var pe *fault.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("workers=%d: err = %v, want *fault.PanicError", workers, err)
			}
			if views != nil {
				t.Fatalf("workers=%d: panicked compile returned views", workers)
			}
			if pe.Where == "" || len(pe.Stack) == 0 {
				t.Fatalf("workers=%d: panic error not labelled: %+v", workers, pe)
			}
			if c.Stats.PanicsRecovered == 0 {
				t.Fatalf("workers=%d: Stats.PanicsRecovered not incremented", workers)
			}
		}()
	}
}

// TestCompileFaultWorkerErrorPropagates injects a spurious error at the
// worker hook and checks it propagates as the typed injected error.
func TestCompileFaultWorkerErrorPropagates(t *testing.T) {
	deactivate := faultinject.Activate(faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SiteWorker, Kind: faultinject.KindError, Nth: 1},
	}})
	defer deactivate()
	_, err := New().Compile(workload.PaperFull())
	var ie *faultinject.InjectedError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want *faultinject.InjectedError", err)
	}
}

// TestCompileFaultSatCacheDelayStillCorrect slows every 7th sat-cache
// lookup and checks the compile still succeeds with the same views.
func TestCompileFaultSatCacheDelayStillCorrect(t *testing.T) {
	want, err := New().Compile(workload.PaperFull())
	if err != nil {
		t.Fatal(err)
	}
	deactivate := faultinject.Activate(faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SiteSatCache, Kind: faultinject.KindDelay, Nth: 7, Every: 7, Delay: time.Millisecond},
	}})
	defer deactivate()
	got, err := New().Compile(workload.PaperFull())
	if err != nil {
		t.Fatalf("delayed compile failed: %v", err)
	}
	if len(got.Query) != len(want.Query) || len(got.Update) != len(want.Update) {
		t.Fatal("delayed compile produced different view sets")
	}
	if faultinject.Fired() == 0 {
		t.Fatal("delay rule never fired")
	}
}
