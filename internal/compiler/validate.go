package compiler

import (
	"fmt"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/containment"
	"github.com/ormkit/incmap/internal/cqt"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/rel"
)

// ValidationError describes why a mapping does not roundtrip.
type ValidationError struct {
	Where  string
	Reason string
}

// Error implements error.
func (e *ValidationError) Error() string {
	return fmt.Sprintf("mapping validation failed at %s: %s", e.Where, e.Reason)
}

// validate implements the five-step validation of Algorithm 1 in Melnik et
// al. as summarized in §1.2 of the paper: (1) left sides one-to-one and
// client coverage, via exhaustive cell analysis of each entity set; (2)-(4)
// integrity-constraint preservation, via store-side cell analysis and
// query-containment checks over the update views; (5) roundtrip of the
// view composition, which the cell analysis establishes for this fragment
// language.
func (c *Compiler) validate(m *frag.Mapping, views *frag.Views) error {
	for _, set := range m.Client.Sets() {
		if len(m.FragsOnSet(set.Name)) == 0 {
			if err := c.checkSetUnmapped(m, set); err != nil {
				return err
			}
			continue
		}
		if err := c.validateSetCells(m, set); err != nil {
			return err
		}
	}
	for _, tn := range m.MappedTables() {
		if err := c.validateTableCells(m, tn); err != nil {
			return err
		}
	}
	if err := c.validateForeignKeys(m, views); err != nil {
		return err
	}
	return nil
}

// checkSetUnmapped verifies that a set without fragments has no mapped
// associations referencing it (data about its entities would be lost).
func (c *Compiler) checkSetUnmapped(m *frag.Mapping, set *edm.EntitySet) error {
	for _, a := range m.Client.Associations() {
		if m.FragForAssoc(a.Name) == nil {
			continue
		}
		if m.Client.IsSubtype(a.End1.Type, set.Type) || m.Client.IsSubtype(a.End2.Type, set.Type) {
			return &ValidationError{
				Where:  "entity set " + set.Name,
				Reason: fmt.Sprintf("association %s is mapped but its endpoint set is not", a.Name),
			}
		}
	}
	return nil
}

// exactTheory restricts a set theory to entities of exactly one concrete
// type, so cell enumeration branches only over attribute atoms.
type exactTheory struct {
	base cond.Theory
	ty   string
}

func (t exactTheory) ConcreteTypes(subject string) []string {
	if subject != "" {
		return nil
	}
	return []string{t.ty}
}
func (t exactTheory) IsSubtype(sub, typ string) bool      { return t.base.IsSubtype(sub, typ) }
func (t exactTheory) Domain(a string) (cond.Domain, bool) { return t.base.Domain(a) }
func (t exactTheory) Nullable(a string) bool              { return t.base.Nullable(a) }
func (t exactTheory) HasAttr(ct, a string) bool           { return t.base.HasAttr(ct, a) }

// validateSetCells enumerates, for every concrete type of the set, the
// satisfiable cells of the fragment-condition space and checks that each
// cell's entities are fully covered: every attribute is stored by an
// active fragment, fixed by the cell's conditions, or necessarily NULL in
// the cell. This is the coverage reasoning of §3.3 generalized, and it is
// exponential in the number of condition atoms by nature.
func (c *Compiler) validateSetCells(m *frag.Mapping, set *edm.EntitySet) error {
	frags := m.FragsOnSet(set.Name)
	atomSet := map[cond.Atom]bool{}
	for _, f := range frags {
		for _, a := range cond.Atoms(f.ClientCond) {
			atomSet[a] = true
		}
	}
	atoms := make([]cond.Atom, 0, len(atomSet))
	for a := range atomSet {
		atoms = append(atoms, a)
	}
	cond.SortAtoms(atoms)

	baseTheory := m.Client.TheoryFor(set.Name)
	for _, ty := range m.Client.ConcreteIn(set.Type) {
		th := exactTheory{base: baseTheory, ty: ty}
		var verr error
		visit := func(asg cond.Assignment) bool {
			c.Stats.CellsVisited++
			if verr = c.checkClientCell(m, set, ty, frags, asg); verr != nil {
				return false
			}
			return true
		}
		if c.Opts.NaiveCells {
			cond.EnumerateAllAssignments(atoms, func(asg cond.Assignment) bool {
				if !cond.ConsistentAssignment(th, asg) {
					c.Stats.CellsVisited++
					return true
				}
				return visit(asg)
			})
		} else {
			cond.EnumerateAssignments(th, atoms, visit)
		}
		if verr != nil {
			return verr
		}
	}
	return nil
}

func (c *Compiler) checkClientCell(m *frag.Mapping, set *edm.EntitySet, ty string, frags []*frag.Fragment, asg cond.Assignment) error {
	covered := map[string]bool{}
	fixed := map[string]bool{}
	anyActive := false
	for _, f := range frags {
		if !asg.Eval(f.ClientCond) {
			continue
		}
		anyActive = true
		for _, a := range f.Attrs {
			covered[a] = true
		}
		eqs := map[string]cond.Value{}
		collectEqualities(f.ClientCond, eqs)
		for a := range eqs {
			fixed[a] = true
		}
	}
	if !anyActive {
		return &ValidationError{
			Where:  "entity set " + set.Name,
			Reason: fmt.Sprintf("entities of type %s in cell %s are not mapped by any fragment", ty, cellDesc(asg)),
		}
	}
	for _, a := range m.Client.AttrNames(ty) {
		if covered[a] || fixed[a] {
			continue
		}
		if cellForcesNull(asg, a) {
			continue
		}
		return &ValidationError{
			Where:  "entity set " + set.Name,
			Reason: fmt.Sprintf("attribute %s of type %s is lost in cell %s", a, ty, cellDesc(asg)),
		}
	}
	return nil
}

func cellForcesNull(asg cond.Assignment, attr string) bool {
	for a, v := range asg {
		if a.Kind == cond.AtomNull && a.Attr == attr && v {
			return true
		}
	}
	return false
}

func cellDesc(asg cond.Assignment) string {
	atoms := make([]cond.Atom, 0, len(asg))
	for a := range asg {
		atoms = append(atoms, a)
	}
	cond.SortAtoms(atoms)
	s := "{"
	for i, a := range atoms {
		if i > 0 {
			s += ", "
		}
		if asg[a] {
			s += a.String()
		} else {
			s += "NOT(" + a.String() + ")"
		}
	}
	return s + "}"
}

// validateTableCells enumerates the satisfiable cells of a table's
// store-side condition space (fragment conditions plus the null-state of
// columns written by several fragments) and checks that active fragments
// never conflict on a shared column and that non-nullable columns are
// always written. For mappings that pack many types and foreign keys into
// one table (the hub-and-rim TPH model of Figure 3) the atom count grows
// with N + N·M and this check dominates compilation, reproducing Figure 4.
func (c *Compiler) validateTableCells(m *frag.Mapping, table string) error {
	tab := m.Store.Table(table)
	frags := m.FragsOnTable(table)

	// The cell space is the atom space of the fragments' store conditions:
	// a cell determines exactly which fragments are active, which is all
	// the per-cell checks depend on. For a hub-and-rim TPH table this is
	// one discriminator equality per type plus one IS NOT NULL per
	// association column — 2^(N·M) satisfiable cells, the Figure 4
	// blow-up.
	atomSet := map[cond.Atom]bool{}
	for _, f := range frags {
		for _, a := range cond.Atoms(f.StoreCond) {
			atomSet[a] = true
		}
	}
	atoms := make([]cond.Atom, 0, len(atomSet))
	for a := range atomSet {
		atoms = append(atoms, a)
	}
	cond.SortAtoms(atoms)

	th := m.Store.TheoryFor(table)
	var verr error
	visit := func(asg cond.Assignment) bool {
		c.Stats.CellsVisited++
		if verr = checkStoreCell(tab, frags, asg); verr != nil {
			return false
		}
		return true
	}
	if c.Opts.NaiveCells {
		cond.EnumerateAllAssignments(atoms, func(asg cond.Assignment) bool {
			if !cond.ConsistentAssignment(th, asg) {
				c.Stats.CellsVisited++
				return true
			}
			return visit(asg)
		})
	} else {
		cond.EnumerateAssignments(th, atoms, visit)
	}
	return verr
}

func checkStoreCell(tab *rel.Table, frags []*frag.Fragment, asg cond.Assignment) error {
	var active []*frag.Fragment
	for _, f := range frags {
		cnd := f.StoreCond
		if !asg.Eval(cnd) {
			continue
		}
		// A fragment is also inactive in cells where one of its written,
		// tracked columns is NULL and the fragment is an association
		// (association rows require the FK value).
		active = append(active, f)
	}
	if len(active) == 0 {
		return nil // unreachable region of the table
	}
	// Shared-column agreement.
	for _, tcol := range tab.Cols {
		col := tcol.Name
		var entityWriters []*frag.Fragment
		var assocWriters []*frag.Fragment
		for _, f := range active {
			if !f.MapsCol(col) {
				continue
			}
			if f.Assoc != "" {
				assocWriters = append(assocWriters, f)
			} else {
				entityWriters = append(entityWriters, f)
			}
		}
		if len(entityWriters) > 1 {
			for _, w := range entityWriters[1:] {
				a0, _ := entityWriters[0].AttrFor(col)
				aw, _ := w.AttrFor(col)
				if entityWriters[0].Set != w.Set || a0 != aw {
					return &ValidationError{
						Where: "table " + tab.Name,
						Reason: fmt.Sprintf("fragments %s and %s both write column %s from different sources in cell %s",
							entityWriters[0].ID, w.ID, col, cellDesc(asg)),
					}
				}
			}
		}
		if len(assocWriters) > 0 && len(entityWriters) > 0 && !tab.IsKey(col) {
			return &ValidationError{
				Where: "table " + tab.Name,
				Reason: fmt.Sprintf("column %s is written by both an entity fragment and association fragment %s (check 1 of §3.2)",
					col, assocWriters[0].ID),
			}
		}
		if len(assocWriters) > 1 && !tab.IsKey(col) {
			return &ValidationError{
				Where:  "table " + tab.Name,
				Reason: fmt.Sprintf("column %s is written by two association fragments in cell %s", col, cellDesc(asg)),
			}
		}
	}
	// Non-nullable coverage: if the cell holds entity rows, every
	// non-nullable column must be written by an active fragment.
	hasEntity := false
	for _, f := range active {
		if f.Set != "" {
			hasEntity = true
		}
	}
	if hasEntity {
		for _, col := range tab.Cols {
			if col.Nullable {
				continue
			}
			written := false
			for _, f := range active {
				if f.MapsCol(col.Name) {
					written = true
					break
				}
				// A column fixed by the fragment's store condition (a TPH
				// discriminator) is written as a constant.
				eqs := map[string]cond.Value{}
				collectEqualities(f.StoreCond, eqs)
				if _, fixed := eqs[col.Name]; fixed {
					written = true
					break
				}
			}
			if !written {
				return &ValidationError{
					Where:  "table " + tab.Name,
					Reason: fmt.Sprintf("non-nullable column %s is not written in cell %s", col.Name, cellDesc(asg)),
				}
			}
		}
	}
	return nil
}

// validateForeignKeys checks steps (2)-(4): every foreign key between
// mapped tables must be preserved by the update views, encoded as the
// query containment π_β(Q_T) ⊆ π_γ(Q_T').
func (c *Compiler) validateForeignKeys(m *frag.Mapping, views *frag.Views) error {
	mapped := map[string]bool{}
	for _, t := range m.MappedTables() {
		mapped[t] = true
	}
	ch := containment.NewChecker(m.Catalog())
	ch.Simplify = !c.Opts.NoSimplify
	defer func() {
		c.Stats.Containments += ch.Stats.Containments
		c.Stats.Implications += ch.Stats.Implications
	}()

	for _, tn := range m.MappedTables() {
		tab := m.Store.Table(tn)
		for _, fk := range tab.FKs {
			written := false
			for _, f := range m.FragsOnTable(tn) {
				for _, colName := range fk.Cols {
					if f.MapsCol(colName) {
						written = true
					}
				}
			}
			if !written {
				continue // FK columns never populated; vacuously preserved
			}
			if !mapped[fk.RefTable] {
				return &ValidationError{
					Where:  "table " + tn,
					Reason: fmt.Sprintf("foreign key %s references unmapped table %s", fk.Name, fk.RefTable),
				}
			}
			lhs, rhs := fkContainmentQueries(views, fk, tn)
			ok, err := ch.Contains(lhs, rhs)
			if err != nil {
				return err
			}
			if !ok {
				return &ValidationError{
					Where:  "table " + tn,
					Reason: fmt.Sprintf("update views violate foreign key %s → %s", fk.Name, fk.RefTable),
				}
			}
		}
	}
	return nil
}

// fkContainmentQueries builds π_{β AS γ}(σ_{β NOT NULL}(Q_T)) ⊆ π_γ(Q_T').
func fkContainmentQueries(views *frag.Views, fk rel.ForeignKey, table string) (cqt.Expr, cqt.Expr) {
	qt := views.Update[table].Q
	qr := views.Update[fk.RefTable].Q

	var notNull []cond.Expr
	cols := make([]cqt.ProjCol, 0, len(fk.Cols))
	for i, c := range fk.Cols {
		notNull = append(notNull, cond.NotNull(c))
		cols = append(cols, cqt.ColAs(c, fk.RefCols[i]))
	}
	lhs := cqt.Project{In: cqt.Select{In: qt, Cond: cond.NewAnd(notNull...)}, Cols: cols}

	rcols := make([]cqt.ProjCol, 0, len(fk.RefCols))
	for _, c := range fk.RefCols {
		rcols = append(rcols, cqt.Col(c))
	}
	rhs := cqt.Project{In: qr, Cols: rcols}
	return lhs, rhs
}
