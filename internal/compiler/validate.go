package compiler

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/containment"
	"github.com/ormkit/incmap/internal/cqt"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/obsv"
	"github.com/ormkit/incmap/internal/rel"
)

// ValidationError describes why a mapping does not roundtrip.
type ValidationError struct {
	Where  string
	Reason string
}

// Error implements error.
func (e *ValidationError) Error() string {
	return fmt.Sprintf("mapping validation failed at %s: %s", e.Where, e.Reason)
}

// validate implements the five-step validation of Algorithm 1 in Melnik et
// al. as summarized in §1.2 of the paper: (1) left sides one-to-one and
// client coverage, via exhaustive cell analysis of each entity set; (2)-(4)
// integrity-constraint preservation, via store-side cell analysis and
// query-containment checks over the update views; (5) roundtrip of the
// view composition, which the cell analysis establishes for this fragment
// language.
//
// The work is expressed as an ordered list of independent tasks — one per
// unmapped-set check, per (concrete type, cell span), per (table, cell
// span), and per foreign key — executed on a pool of Options.Parallelism
// workers. Task order mirrors the sequential algorithm exactly, and the
// error of the lowest-ordered failing task is returned, so any worker
// count yields the same first error (byte for byte) as a sequential run.
func (c *Compiler) validate(ctx context.Context, m *frag.Mapping, views *frag.Views) error {
	workers := c.workers()
	var tasks []vtask

	for _, set := range m.Client.Sets() {
		if len(m.FragsOnSet(set.Name)) == 0 {
			set := set
			tasks = append(tasks, vtask{
				label: "unmapped-set check of " + set.Name,
				run: func(context.Context, *vcontrol, int64) error {
					return c.checkSetUnmapped(m, set)
				},
			})
			continue
		}
		tasks = append(tasks, c.setCellTasks(m, set, workers)...)
	}
	for _, tn := range m.MappedTables() {
		tasks = append(tasks, c.tableCellTasks(m, tn, workers)...)
	}

	ch := containment.NewChecker(m.Catalog())
	ch.Simplify = !c.Opts.NoSimplify
	ch.Cache = c.satCache()
	ch.Budget = c.Opts.Budget
	ch.Start = c.start
	ch.Op = "full compile"
	tasks = append(tasks, c.foreignKeyTasks(m, views, ch)...)

	var budgetDeadline time.Time
	if c.Opts.Budget.MaxWallTime > 0 {
		budgetDeadline = c.start.Add(c.Opts.Budget.MaxWallTime)
	}
	vs := c.root.Child("Validate",
		obsv.String("tasks", strconv.Itoa(len(tasks))),
		obsv.String("workers", strconv.Itoa(workers)))
	err := c.runTasks(ctx, tasks, workers, budgetDeadline, vs)

	atomic.AddInt64(&c.Stats.Containments, atomic.LoadInt64(&ch.Stats.Containments))
	atomic.AddInt64(&c.Stats.Implications, atomic.LoadInt64(&ch.Stats.Implications))
	atomic.AddInt64(&c.Stats.CacheHits, atomic.LoadInt64(&ch.Stats.CacheHits))
	atomic.AddInt64(&c.Stats.CacheMisses, atomic.LoadInt64(&ch.Stats.CacheMisses))
	mContainments.Add(atomic.LoadInt64(&ch.Stats.Containments))
	mCacheHits.Add(atomic.LoadInt64(&ch.Stats.CacheHits))
	mCacheMisses.Add(atomic.LoadInt64(&ch.Stats.CacheMisses))
	vs.End(outcome(err))
	return err
}

// checkSetUnmapped verifies that a set without fragments has no mapped
// associations referencing it (data about its entities would be lost).
func (c *Compiler) checkSetUnmapped(m *frag.Mapping, set *edm.EntitySet) error {
	for _, a := range m.Client.Associations() {
		if m.FragForAssoc(a.Name) == nil {
			continue
		}
		if m.Client.IsSubtype(a.End1.Type, set.Type) || m.Client.IsSubtype(a.End2.Type, set.Type) {
			return &ValidationError{
				Where:  "entity set " + set.Name,
				Reason: fmt.Sprintf("association %s is mapped but its endpoint set is not", a.Name),
			}
		}
	}
	return nil
}

// exactTheory restricts a set theory to entities of exactly one concrete
// type, so cell enumeration branches only over attribute atoms.
type exactTheory struct {
	base cond.Theory
	ty   string
}

func (t exactTheory) ConcreteTypes(subject string) []string {
	if subject != "" {
		return nil
	}
	return []string{t.ty}
}
func (t exactTheory) IsSubtype(sub, typ string) bool      { return t.base.IsSubtype(sub, typ) }
func (t exactTheory) Domain(a string) (cond.Domain, bool) { return t.base.Domain(a) }
func (t exactTheory) Nullable(a string) bool              { return t.base.Nullable(a) }
func (t exactTheory) HasAttr(ct, a string) bool           { return t.base.HasAttr(ct, a) }

// cellSpan is one contiguous slice of a cell space: the sub-space of full
// assignments extending prefix (the dense truth slice of the first start
// atoms). A zero span denotes the whole space.
type cellSpan struct {
	prefix []int8
	start  int
}

// splitSpans partitions the DFS enumeration order of the atoms' cell space
// into spans by enumerating the theory-consistent assignments of a short
// leading prefix. The spans, in order, visit exactly the cells of a single
// enumeration in the same order, so per-span first errors combine under
// task ordering into the sequential first error.
func (c *Compiler) splitSpans(th cond.Theory, atoms []cond.Atom, workers int) []cellSpan {
	// Splitting below ~2^16 cells costs more in task bookkeeping than it
	// buys; the naive ablation enumerates inconsistent cells too and is
	// kept sequential per space for simplicity.
	const minSplitAtoms = 16
	if workers <= 1 || c.Opts.NaiveCells || len(atoms) < minSplitAtoms {
		return []cellSpan{{}}
	}
	d := 0
	for (1<<d) < 4*workers && d < len(atoms)-8 && d < 12 {
		d++
	}
	if d == 0 {
		return []cellSpan{{}}
	}
	var spans []cellSpan
	cond.EnumerateCells(th, atoms[:d], nil, 0, func(vals []int8) bool {
		p := make([]int8, d)
		copy(p, vals)
		spans = append(spans, cellSpan{prefix: p, start: d})
		return true
	})
	return spans // empty when the whole space is inconsistent: zero cells
}

// enumerateSpan drives the per-cell visitor over one span, honouring the
// naive-cells ablation and cancellation, and accounting visited cells. The
// visitor returns the validation error that stops the span, if any.
func (c *Compiler) enumerateSpan(th cond.Theory, atoms []cond.Atom, sp cellSpan, ctl *vcontrol, ord int64, check func([]int8) error) error {
	var cells int64
	defer func() {
		atomic.AddInt64(&c.Stats.CellsVisited, cells)
		mCells.Add(cells)
	}()
	var verr error
	visit := func(vals []int8) bool {
		if ctl.cancelled(ord) {
			return false
		}
		cells++
		if verr = check(vals); verr != nil {
			return false
		}
		return true
	}
	if c.Opts.NaiveCells {
		cond.EnumerateAllAssignmentsIndexed(atoms, func(asg cond.Assignment, vals []int8) bool {
			if ctl.cancelled(ord) {
				return false
			}
			if !cond.ConsistentAssignment(th, asg) {
				cells++
				return true
			}
			return visit(vals)
		})
	} else {
		cond.EnumerateCells(th, atoms, sp.prefix, sp.start, visit)
	}
	return verr
}

// condAtoms collects the distinct atoms of the given conditions in
// canonical order, plus the index of each atom in that order.
func condAtoms(conds []cond.Expr) ([]cond.Atom, map[cond.Atom]int) {
	atomSet := map[cond.Atom]bool{}
	for _, x := range conds {
		for _, a := range cond.Atoms(x) {
			atomSet[a] = true
		}
	}
	atoms := make([]cond.Atom, 0, len(atomSet))
	for a := range atomSet {
		atoms = append(atoms, a)
	}
	cond.SortAtoms(atoms)
	idx := make(map[cond.Atom]int, len(atoms))
	for i, a := range atoms {
		idx[a] = i
	}
	return atoms, idx
}

// clientChecker holds the per-set state of client-side cell checking,
// precomputed once and shared read-only by every task of the set: compiled
// fragment conditions, the attributes each fragment covers or fixes, and
// the IS NULL atoms of each attribute. It replaces the per-cell condition
// evaluation, equality collection and map allocation of the sequential
// implementation.
type clientChecker struct {
	set   *edm.EntitySet
	atoms []cond.Atom
	frags []clientFrag
	// nullIdx maps an attribute to the indices of its IS NULL atoms; a cell
	// forces the attribute NULL when any of them is assigned true.
	nullIdx map[string][]int
}

type clientFrag struct {
	f    *frag.Fragment
	eval func([]int8) bool
	// covers lists the attributes the fragment stores plus the attributes
	// its client condition fixes by equality (precomputed: both depend only
	// on the fragment, not on the cell).
	covers []string
}

func newClientChecker(set *edm.EntitySet, frags []*frag.Fragment, atoms []cond.Atom, idx map[cond.Atom]int) *clientChecker {
	ck := &clientChecker{set: set, atoms: atoms, nullIdx: map[string][]int{}}
	for i, a := range atoms {
		if a.Kind == cond.AtomNull {
			ck.nullIdx[a.Attr] = append(ck.nullIdx[a.Attr], i)
		}
	}
	for _, f := range frags {
		cf := clientFrag{f: f, eval: cond.CompileEval(f.ClientCond, idx)}
		seen := map[string]bool{}
		for _, a := range f.Attrs {
			if !seen[a] {
				seen[a] = true
				cf.covers = append(cf.covers, a)
			}
		}
		eqs := map[string]cond.Value{}
		collectEqualities(f.ClientCond, eqs)
		for a := range eqs {
			if !seen[a] {
				seen[a] = true
				cf.covers = append(cf.covers, a)
			}
		}
		ck.frags = append(ck.frags, cf)
	}
	return ck
}

// check validates one client cell for entities of the given concrete type,
// whose attribute list is attrs. covered is task-local scratch. The
// Assignment form of the cell is materialized only on the error paths.
func (ck *clientChecker) check(ty string, attrs []string, vals []int8, covered map[string]bool) error {
	for a := range covered {
		delete(covered, a)
	}
	anyActive := false
	for i := range ck.frags {
		cf := &ck.frags[i]
		if !cf.eval(vals) {
			continue
		}
		anyActive = true
		for _, a := range cf.covers {
			covered[a] = true
		}
	}
	if !anyActive {
		return &ValidationError{
			Where:  "entity set " + ck.set.Name,
			Reason: fmt.Sprintf("entities of type %s in cell %s are not mapped by any fragment", ty, cellDescVals(ck.atoms, vals)),
		}
	}
	for _, a := range attrs {
		if covered[a] {
			continue
		}
		forcedNull := false
		for _, ni := range ck.nullIdx[a] {
			if vals[ni] == 1 {
				forcedNull = true
				break
			}
		}
		if forcedNull {
			continue
		}
		return &ValidationError{
			Where:  "entity set " + ck.set.Name,
			Reason: fmt.Sprintf("attribute %s of type %s is lost in cell %s", a, ty, cellDescVals(ck.atoms, vals)),
		}
	}
	return nil
}

// setCellTasks enumerates, for every concrete type of the set, the
// satisfiable cells of the fragment-condition space and checks that each
// cell's entities are fully covered: every attribute is stored by an
// active fragment, fixed by the cell's conditions, or necessarily NULL in
// the cell. This is the coverage reasoning of §3.3 generalized, and it is
// exponential in the number of condition atoms by nature; each concrete
// type's cell space is split into spans that run as independent tasks.
func (c *Compiler) setCellTasks(m *frag.Mapping, set *edm.EntitySet, workers int) []vtask {
	frags := m.FragsOnSet(set.Name)
	conds := make([]cond.Expr, 0, len(frags))
	for _, f := range frags {
		conds = append(conds, f.ClientCond)
	}
	atoms, idx := condAtoms(conds)
	ck := newClientChecker(set, frags, atoms, idx)

	baseTheory := m.Client.TheoryFor(set.Name)
	var tasks []vtask
	for _, ty := range m.Client.ConcreteIn(set.Type) {
		ty := ty
		th := exactTheory{base: baseTheory, ty: ty}
		attrs := m.Client.AttrNames(ty)
		for si, sp := range c.splitSpans(th, atoms, workers) {
			sp := sp
			tasks = append(tasks, vtask{
				label: fmt.Sprintf("client cell span %d of set %s, type %s", si, set.Name, ty),
				run: func(_ context.Context, ctl *vcontrol, ord int64) error {
					covered := map[string]bool{}
					return c.enumerateSpan(th, atoms, sp, ctl, ord, func(vals []int8) error {
						return ck.check(ty, attrs, vals, covered)
					})
				},
			})
		}
	}
	return tasks
}

// cellDescVals renders a dense cell for error messages (cold path).
func cellDescVals(atoms []cond.Atom, vals []int8) string {
	return cellDesc(cond.AssignmentFromVals(atoms, vals))
}

func cellDesc(asg cond.Assignment) string {
	atoms := make([]cond.Atom, 0, len(asg))
	for a := range asg {
		atoms = append(atoms, a)
	}
	cond.SortAtoms(atoms)
	var b strings.Builder
	b.WriteByte('{')
	for i, a := range atoms {
		if i > 0 {
			b.WriteString(", ")
		}
		if asg[a] {
			b.WriteString(a.String())
		} else {
			b.WriteString("NOT(")
			b.WriteString(a.String())
			b.WriteByte(')')
		}
	}
	b.WriteByte('}')
	return b.String()
}

// storeChecker holds the per-table state of store-side cell checking,
// precomputed once and shared read-only by the table's span tasks. Only
// columns written by at least two fragments can produce a conflict, so the
// per-cell column loop runs over that subset; fixed-column sets (the TPH
// discriminator equalities of each fragment's store condition) are
// computed once per fragment instead of per column per fragment per cell.
type storeChecker struct {
	tab      *rel.Table
	atoms    []cond.Atom
	frags    []*frag.Fragment
	evals    []func([]int8) bool
	isEntity []bool // fragment has Set != ""
	shared   []sharedCol
	nonNull  []nonNullCol
}

// sharedCol is a column written by two or more fragments, with its writers
// in fragment order.
type sharedCol struct {
	name    string
	isKey   bool
	writers []colWriter
}

type colWriter struct {
	fi    int  // index into storeChecker.frags
	assoc bool // written by an association fragment
	set   string
	attr  string // source attribute (AttrFor)
	id    string
}

// nonNullCol is a non-nullable column with the fragments that write it:
// those mapping it plus those fixing it by a store-condition equality.
type nonNullCol struct {
	name     string
	coverers []int
}

func newStoreChecker(tab *rel.Table, frags []*frag.Fragment, atoms []cond.Atom, idx map[cond.Atom]int) *storeChecker {
	ck := &storeChecker{tab: tab, atoms: atoms, frags: frags}
	fixed := make([]map[string]cond.Value, len(frags))
	for i, f := range frags {
		ck.evals = append(ck.evals, cond.CompileEval(f.StoreCond, idx))
		ck.isEntity = append(ck.isEntity, f.Set != "")
		fixed[i] = map[string]cond.Value{}
		collectEqualities(f.StoreCond, fixed[i])
	}
	for _, tcol := range tab.Cols {
		col := tcol.Name
		var writers []colWriter
		for i, f := range frags {
			if !f.MapsCol(col) {
				continue
			}
			attr, _ := f.AttrFor(col)
			writers = append(writers, colWriter{fi: i, assoc: f.Assoc != "", set: f.Set, attr: attr, id: f.ID})
		}
		if len(writers) >= 2 {
			ck.shared = append(ck.shared, sharedCol{name: col, isKey: tab.IsKey(col), writers: writers})
		}
		if !tcol.Nullable {
			nn := nonNullCol{name: col}
			for i, f := range frags {
				_, fixes := fixed[i][col]
				if f.MapsCol(col) || fixes {
					nn.coverers = append(nn.coverers, i)
				}
			}
			ck.nonNull = append(ck.nonNull, nn)
		}
	}
	return ck
}

// storeScratch is the task-local mutable state of store-side cell checks.
type storeScratch struct {
	mask    []bool
	active  []int
	entityW []colWriter
	assocW  []colWriter
}

func (ck *storeChecker) newScratch() *storeScratch {
	return &storeScratch{mask: make([]bool, len(ck.frags))}
}

// check validates one store cell: active fragments must never conflict on
// a shared column, and if the cell holds entity rows every non-nullable
// column must be written. The Assignment form of the cell is materialized
// only on the error paths.
func (ck *storeChecker) check(vals []int8, sc *storeScratch) error {
	sc.active = sc.active[:0]
	for i := range ck.frags {
		on := ck.evals[i](vals)
		sc.mask[i] = on
		if on {
			sc.active = append(sc.active, i)
		}
	}
	if len(sc.active) == 0 {
		return nil // unreachable region of the table
	}
	// Shared-column agreement.
	for si := range ck.shared {
		col := &ck.shared[si]
		sc.entityW = sc.entityW[:0]
		sc.assocW = sc.assocW[:0]
		for _, w := range col.writers {
			if !sc.mask[w.fi] {
				continue
			}
			if w.assoc {
				sc.assocW = append(sc.assocW, w)
			} else {
				sc.entityW = append(sc.entityW, w)
			}
		}
		if len(sc.entityW) > 1 {
			w0 := sc.entityW[0]
			for _, w := range sc.entityW[1:] {
				if w0.set != w.set || w0.attr != w.attr {
					return &ValidationError{
						Where: "table " + ck.tab.Name,
						Reason: fmt.Sprintf("fragments %s and %s both write column %s from different sources in cell %s",
							w0.id, w.id, col.name, cellDescVals(ck.atoms, vals)),
					}
				}
			}
		}
		if len(sc.assocW) > 0 && len(sc.entityW) > 0 && !col.isKey {
			return &ValidationError{
				Where: "table " + ck.tab.Name,
				Reason: fmt.Sprintf("column %s is written by both an entity fragment and association fragment %s (check 1 of §3.2)",
					col.name, sc.assocW[0].id),
			}
		}
		if len(sc.assocW) > 1 && !col.isKey {
			return &ValidationError{
				Where:  "table " + ck.tab.Name,
				Reason: fmt.Sprintf("column %s is written by two association fragments in cell %s", col.name, cellDescVals(ck.atoms, vals)),
			}
		}
	}
	// Non-nullable coverage: if the cell holds entity rows, every
	// non-nullable column must be written by an active fragment.
	hasEntity := false
	for _, fi := range sc.active {
		if ck.isEntity[fi] {
			hasEntity = true
			break
		}
	}
	if hasEntity {
		for ni := range ck.nonNull {
			nn := &ck.nonNull[ni]
			written := false
			for _, fi := range nn.coverers {
				if sc.mask[fi] {
					written = true
					break
				}
			}
			if !written {
				return &ValidationError{
					Where:  "table " + ck.tab.Name,
					Reason: fmt.Sprintf("non-nullable column %s is not written in cell %s", nn.name, cellDescVals(ck.atoms, vals)),
				}
			}
		}
	}
	return nil
}

// tableCellTasks enumerates the satisfiable cells of a table's store-side
// condition space (fragment conditions plus the null-state of columns
// written by several fragments) and checks each cell with the precomputed
// storeChecker. For mappings that pack many types and foreign keys into
// one table (the hub-and-rim TPH model of Figure 3) the atom count grows
// with N + N·M and this check dominates compilation, reproducing Figure 4;
// splitting the single table's cell space into spans is what lets that
// worst case use every core.
func (c *Compiler) tableCellTasks(m *frag.Mapping, table string, workers int) []vtask {
	tab := m.Store.Table(table)
	frags := m.FragsOnTable(table)

	// The cell space is the atom space of the fragments' store conditions:
	// a cell determines exactly which fragments are active, which is all
	// the per-cell checks depend on. For a hub-and-rim TPH table this is
	// one discriminator equality per type plus one IS NOT NULL per
	// association column — 2^(N·M) satisfiable cells, the Figure 4
	// blow-up.
	conds := make([]cond.Expr, 0, len(frags))
	for _, f := range frags {
		conds = append(conds, f.StoreCond)
	}
	atoms, idx := condAtoms(conds)
	ck := newStoreChecker(tab, frags, atoms, idx)

	th := m.Store.TheoryFor(table)
	var tasks []vtask
	for si, sp := range c.splitSpans(th, atoms, workers) {
		sp := sp
		tasks = append(tasks, vtask{
			label: fmt.Sprintf("store cell span %d of table %s", si, table),
			run: func(_ context.Context, ctl *vcontrol, ord int64) error {
				sc := ck.newScratch()
				return c.enumerateSpan(th, atoms, sp, ctl, ord, func(vals []int8) error {
					return ck.check(vals, sc)
				})
			},
		})
	}
	return tasks
}

// foreignKeyTasks checks steps (2)-(4): every foreign key between mapped
// tables must be preserved by the update views, encoded as the query
// containment π_β(Q_T) ⊆ π_γ(Q_T'). Each foreign key is one task; the
// containment checker is shared (its statistics are atomic and its
// per-call state is local).
func (c *Compiler) foreignKeyTasks(m *frag.Mapping, views *frag.Views, ch *containment.Checker) []vtask {
	mapped := map[string]bool{}
	for _, t := range m.MappedTables() {
		mapped[t] = true
	}
	// The right side of an FK containment depends only on the referenced
	// table's view and the referenced columns, so checks sharing a
	// (RefTable, RefCols) pair — every rim table's FK into the hub, in the
	// Figure 3 model — share one lazily prenormalized right side. sync.Once
	// makes the sharing safe across parallel tasks.
	pres := map[string]*fkRhsPre{}
	var tasks []vtask
	for _, tn := range m.MappedTables() {
		tn := tn
		tab := m.Store.Table(tn)
		for _, fk := range tab.FKs {
			fk := fk
			var pre *fkRhsPre
			if mapped[fk.RefTable] {
				key := fkRhsKey(fk)
				if pres[key] == nil {
					pres[key] = &fkRhsPre{}
				}
				pre = pres[key]
			}
			tasks = append(tasks, vtask{
				label: fmt.Sprintf("foreign-key check %s of table %s", fk.Name, tn),
				run: func(ctx context.Context, _ *vcontrol, _ int64) error {
					written := false
					for _, f := range m.FragsOnTable(tn) {
						for _, colName := range fk.Cols {
							if f.MapsCol(colName) {
								written = true
							}
						}
					}
					if !written {
						return nil // FK columns never populated; vacuously preserved
					}
					if !mapped[fk.RefTable] {
						return &ValidationError{
							Where:  "table " + tn,
							Reason: fmt.Sprintf("foreign key %s references unmapped table %s", fk.Name, fk.RefTable),
						}
					}
					lhs, rhs := fkContainmentQueries(views, fk, tn)
					rpre, err := pre.get(ch, rhs)
					if err != nil {
						return err
					}
					ok, err := ch.ContainsPreCtx(ctx, lhs, rpre)
					if err != nil {
						return err
					}
					if !ok {
						return &ValidationError{
							Where:  "table " + tn,
							Reason: fmt.Sprintf("update views violate foreign key %s → %s", fk.Name, fk.RefTable),
						}
					}
					return nil
				},
			})
		}
	}
	return tasks
}

// fkRhsPre lazily prenormalizes one FK containment right side, shared by
// every check that references the same table through the same columns.
type fkRhsPre struct {
	once sync.Once
	pre  *containment.Prenorm
	err  error
}

func (p *fkRhsPre) get(ch *containment.Checker, rhs cqt.Expr) (*containment.Prenorm, error) {
	p.once.Do(func() { p.pre, p.err = ch.PrenormalizeRight(rhs) })
	return p.pre, p.err
}

func fkRhsKey(fk rel.ForeignKey) string {
	return fk.RefTable + "\x00" + strings.Join(fk.RefCols, "\x00")
}

// fkContainmentQueries builds π_{β AS γ}(σ_{β NOT NULL}(Q_T)) ⊆ π_γ(Q_T').
func fkContainmentQueries(views *frag.Views, fk rel.ForeignKey, table string) (cqt.Expr, cqt.Expr) {
	qt := views.Update[table].Q
	qr := views.Update[fk.RefTable].Q

	var notNull []cond.Expr
	cols := make([]cqt.ProjCol, 0, len(fk.Cols))
	for i, c := range fk.Cols {
		notNull = append(notNull, cond.NotNull(c))
		cols = append(cols, cqt.ColAs(c, fk.RefCols[i]))
	}
	lhs := cqt.Project{In: cqt.Select{In: qt, Cond: cond.NewAnd(notNull...)}, Cols: cols}

	rcols := make([]cqt.ProjCol, 0, len(fk.RefCols))
	for _, c := range fk.RefCols {
		rcols = append(rcols, cqt.Col(c))
	}
	rhs := cqt.Project{In: qr, Cols: rcols}
	return lhs, rhs
}
