package compiler

import (
	"fmt"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/cqt"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/rel"
)

// updateView builds the update view for one table: the union of the
// entity-fragment contributions (padded to the table's full column list),
// left-outer-joined with each association fragment mapped into the table
// per §3.2.1 of the paper.
func (c *Compiler) updateView(m *frag.Mapping, table string) (*cqt.View, error) {
	tab := m.Store.Table(table)
	if tab == nil {
		return nil, fmt.Errorf("unknown table %q", table)
	}
	var entity []*frag.Fragment
	var assoc []*frag.Fragment
	for _, f := range m.FragsOnTable(table) {
		if f.Assoc != "" {
			assoc = append(assoc, f)
		} else {
			entity = append(entity, f)
		}
	}

	// Columns written by association fragments are excluded from the
	// entity part (they are supplied by the outer joins below).
	assocCols := map[string]bool{}
	for _, g := range assoc {
		for _, col := range g.Cols() {
			if !tab.IsKey(col) {
				assocCols[col] = true
			}
		}
	}

	entityPart, err := c.entityPart(m, tab, entity, assocCols)
	if err != nil {
		return nil, err
	}

	q := entityPart
	for _, g := range assoc {
		part := assocContribution(g)
		if q == nil {
			q = part
			continue
		}
		// Join the association pairs onto the entity rows by the table key.
		on := make([][2]string, 0, len(tab.Key))
		for _, k := range tab.Key {
			on = append(on, [2]string{k, k})
		}
		q = cqt.Join{Kind: cqt.LeftOuter, L: q, R: part, On: on}
	}
	if q == nil {
		return nil, fmt.Errorf("table %q has fragments but no contribution", table)
	}
	return &cqt.View{Q: q}, nil
}

// entityPart assembles the entity-fragment contributions of a table.
func (c *Compiler) entityPart(m *frag.Mapping, tab *rel.Table, entity []*frag.Fragment, skipCols map[string]bool) (cqt.Expr, error) {
	if len(entity) == 0 {
		return nil, nil
	}
	// Group fragments by entity set, then by equivalent client condition
	// within each set. Equivalent-condition fragments write different
	// column subsets of the same rows and are joined on the key;
	// different-condition groups contribute disjoint rows and are unioned.
	type group struct {
		set   string
		cond  cond.Expr
		frags []*frag.Fragment
	}
	var groups []*group
	for _, f := range entity {
		placed := false
		for _, g := range groups {
			if g.set != f.Set {
				continue
			}
			c.addEquivalenceOp()
			if c.equivalent(m.Client.TheoryFor(f.Set), g.cond, f.ClientCond) {
				g.frags = append(g.frags, f)
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, &group{set: f.Set, cond: f.ClientCond, frags: []*frag.Fragment{f}})
		}
	}
	// Groups over the same set must be pairwise disjoint, or the update
	// view would store a client entity twice with conflicting shapes.
	for i := 0; i < len(groups); i++ {
		for j := i + 1; j < len(groups); j++ {
			if groups[i].set != groups[j].set {
				continue
			}
			c.addEquivalenceOp()
			if !c.disjoint(m.Client.TheoryFor(groups[i].set), groups[i].cond, groups[j].cond) {
				return nil, fmt.Errorf("fragments %s and %s on table %s overlap ambiguously",
					groups[i].frags[0].ID, groups[j].frags[0].ID, tab.Name)
			}
		}
	}

	var branches []cqt.Expr
	for _, g := range groups {
		b, err := c.groupContribution(m, tab, g.frags, g.cond, skipCols)
		if err != nil {
			return nil, err
		}
		branches = append(branches, b)
	}
	if len(branches) == 1 {
		return branches[0], nil
	}
	return cqt.UnionAll{Inputs: branches}, nil
}

// groupContribution builds one union branch of an update view: the join of
// the group's fragments over the client set, projected and renamed into the
// table's columns with NULL padding.
func (c *Compiler) groupContribution(m *frag.Mapping, tab *rel.Table, frags []*frag.Fragment, groupCond cond.Expr, skipCols map[string]bool) (cqt.Expr, error) {
	set := frags[0].Set

	// All fragments in the group select the same client rows, so a single
	// scan suffices; merge their attribute→column renamings.
	colFor := map[string]string{} // table column -> client attribute
	for _, f := range frags {
		for _, a := range f.Attrs {
			col := f.ColOf[a]
			if prev, ok := colFor[col]; ok && prev != a {
				return nil, fmt.Errorf("fragments map both %q and %q to column %s.%s", prev, a, tab.Name, col)
			}
			colFor[col] = a
		}
	}
	// Columns fixed by the fragments' store conditions (TPH discriminator
	// values) are written as constants.
	consts := map[string]cond.Value{}
	for _, f := range frags {
		collectEqualities(f.StoreCond, consts)
	}
	scan := cqt.Select{In: cqt.ScanSet{Set: set}, Cond: groupCond}
	cols := make([]cqt.ProjCol, 0, len(tab.Cols))
	for _, tc := range tab.Cols {
		if skipCols[tc.Name] {
			continue
		}
		if a, ok := colFor[tc.Name]; ok {
			cols = append(cols, cqt.ColAs(a, tc.Name))
		} else if val, ok := consts[tc.Name]; ok {
			cols = append(cols, cqt.LitAs(cqt.Const(val), tc.Name))
		} else {
			cols = append(cols, cqt.LitAs(cqt.NullOf(tc.Type), tc.Name))
		}
	}
	return cqt.Project{In: scan, Cols: cols}, nil
}

// assocContribution builds π_{PK1 AS f(PK1), PK2 AS f(PK2)}(A) for an
// association fragment.
func assocContribution(g *frag.Fragment) cqt.Expr {
	cols := make([]cqt.ProjCol, 0, len(g.Attrs))
	for _, a := range g.Attrs {
		cols = append(cols, cqt.ColAs(a, g.ColOf[a]))
	}
	return cqt.Project{In: cqt.ScanAssoc{Assoc: g.Assoc}, Cols: cols}
}
