package compiler

import (
	"strings"
	"testing"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/rel"
	"github.com/ormkit/incmap/internal/workload"
)

// TestMappedAssociationOverUnmappedSetRejected: an association whose
// endpoint set has no fragments loses data.
func TestMappedAssociationOverUnmappedSetRejected(t *testing.T) {
	m := workload.PaperFull()
	var keep []*frag.Fragment
	for _, f := range m.Frags {
		if f.Set == "" || f.Set != "Persons" {
			keep = append(keep, f)
		}
	}
	// Remove all entity fragments but keep the association fragment.
	m.Frags = keep
	_, err := New().Compile(m)
	if err == nil {
		t.Fatal("association over unmapped set accepted")
	}
	if !strings.Contains(err.Error(), "Supports") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestForeignKeyToUnmappedTableRejected: FK columns written by fragments
// must reference mapped tables.
func TestForeignKeyToUnmappedTableRejected(t *testing.T) {
	m := workload.PaperInitial()
	// Give HR an FK into the unmapped Client table, and write it.
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(m.Store.AddForeignKey("HR", rel.ForeignKey{
		Name: "fk_bad", Cols: []string{"Id"}, RefTable: "Client", RefCols: []string{"Cid"},
	}))
	_, err := New().Compile(m)
	if err == nil {
		t.Fatal("FK to unmapped table accepted")
	}
	if !strings.Contains(err.Error(), "unmapped") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestAmbiguousOverlappingFragmentsRejected: two fragments over the same
// set with overlapping, non-equivalent conditions on the same table cannot
// be inverted.
func TestAmbiguousOverlappingFragmentsRejected(t *testing.T) {
	m := workload.PartitionedAgeModel()
	// Make the two partitions overlap: Adult takes age >= 10.
	for _, f := range m.Frags {
		if f.Table == "Adult" {
			f.ClientCond = cond.NewAnd(
				cond.TypeIs{Type: "Person"},
				cond.Cmp{Attr: "Age", Op: cond.OpGe, Val: cond.Int(10)},
			)
		}
	}
	// Map both into ONE table to force the conflict.
	for _, f := range m.Frags {
		f.Table = "Adult"
	}
	if _, err := New().Compile(m); err == nil {
		t.Fatal("overlapping fragments on one table accepted")
	}
}

// TestTwoEntityFragmentsSameColumnDifferentSources: a store cell where two
// active fragments write the same column from different attributes.
func TestConflictingColumnWritersRejected(t *testing.T) {
	c := edm.NewSchema()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(c.AddType(edm.EntityType{
		Name: "T",
		Attrs: []edm.Attribute{
			{Name: "Id", Type: cond.KindInt},
			{Name: "A", Type: cond.KindString, Nullable: true},
			{Name: "B", Type: cond.KindString, Nullable: true},
		},
		Key: []string{"Id"},
	}))
	must(c.AddSet(edm.EntitySet{Name: "Ts", Type: "T"}))
	s := rel.NewSchema()
	must(s.AddTable(rel.Table{
		Name: "Tab",
		Cols: []rel.Column{
			{Name: "Id", Type: cond.KindInt},
			{Name: "X", Type: cond.KindString, Nullable: true},
		},
		Key: []string{"Id"},
	}))
	m := &frag.Mapping{Client: c, Store: s}
	m.Frags = append(m.Frags,
		&frag.Fragment{
			ID: "fa", Set: "Ts", ClientCond: cond.TypeIs{Type: "T"},
			Attrs: []string{"Id", "A"}, Table: "Tab", StoreCond: cond.True{},
			ColOf: map[string]string{"Id": "Id", "A": "X"},
		},
		&frag.Fragment{
			ID: "fb", Set: "Ts", ClientCond: cond.TypeIs{Type: "T"},
			Attrs: []string{"Id", "B"}, Table: "Tab", StoreCond: cond.True{},
			ColOf: map[string]string{"Id": "Id", "B": "X"},
		},
	)
	if _, err := New().Compile(m); err == nil {
		t.Fatal("two fragments writing one column from different attributes accepted")
	}
}

// TestValidationErrorMessage exposes the ValidationError type.
func TestValidationErrorMessage(t *testing.T) {
	e := &ValidationError{Where: "table X", Reason: "boom"}
	if !strings.Contains(e.Error(), "table X") || !strings.Contains(e.Error(), "boom") {
		t.Fatalf("Error() = %q", e.Error())
	}
}

// TestNoSimplifyOptionStillValid: the simplifier ablation must not change
// compilation outcomes, only cost.
func TestNoSimplifyOptionStillValid(t *testing.T) {
	c := &Compiler{Opts: Options{NoSimplify: true}}
	views, err := c.Compile(workload.PaperFull())
	if err != nil {
		t.Fatal(err)
	}
	if views.Query["Person"] == nil {
		t.Fatal("missing views")
	}
}

// TestHubRimCellCountsScale confirms the exponential cell growth driving
// Figure 4: cells(N=2,M=3) ≫ cells(N=2,M=1).
func TestHubRimCellCountsScale(t *testing.T) {
	count := func(mm int) int64 {
		m := workload.HubRim(workload.HubRimOptions{N: 2, M: mm, TPH: true})
		c := New()
		if _, err := c.Compile(m); err != nil {
			t.Fatal(err)
		}
		return c.Stats.CellsVisited
	}
	c1, c3 := count(1), count(3)
	if c3 < 4*c1 {
		t.Fatalf("cell count not growing exponentially: M=1 → %d, M=3 → %d", c1, c3)
	}
}
