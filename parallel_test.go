// Determinism tests for the parallel validation pipeline: for every seed
// model — and for mappings engineered to fail each validation check — a
// compile at any worker count must produce byte-identical errors and
// structurally identical views to the sequential compile.
package incmap_test

import (
	"errors"
	"reflect"
	"testing"

	incmap "github.com/ormkit/incmap"
	"github.com/ormkit/incmap/internal/compiler"
	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/rel"
	"github.com/ormkit/incmap/internal/workload"
)

// seedModels returns fresh copies of every healthy model the suite
// compiles, keyed by name. Fresh copies matter: compilation must not be
// asked to share mutable mapping state across worker counts.
func seedModels() map[string]func() *frag.Mapping {
	return map[string]func() *frag.Mapping{
		"PaperInitial":    workload.PaperInitial,
		"PaperFull":       workload.PaperFull,
		"PartitionedAge":  workload.PartitionedAgeModel,
		"Chain30":         func() *frag.Mapping { return workload.Chain(30) },
		"HubRimTPH_N2_M3": func() *frag.Mapping { return workload.HubRim(workload.HubRimOptions{N: 2, M: 3, TPH: true}) },
		"HubRimTPT_N2_M4": func() *frag.Mapping { return workload.HubRim(workload.HubRimOptions{N: 2, M: 4, TPH: false}) },
		"CustomerSmall": func() *frag.Mapping {
			return workload.Customer(workload.CustomerOptions{
				Types: 30, Hierarchies: 5, LargestTPH: 12, Associations: 6, SharedTableFKs: 1,
			})
		},
	}
}

// brokenModels returns mappings that each trip a different validation
// check, so the error-selection path is exercised per check kind.
func brokenModels(t *testing.T) map[string]func() *frag.Mapping {
	t.Helper()
	return map[string]func() *frag.Mapping{
		// Association whose endpoint set has no entity fragments.
		"UnmappedSet": func() *frag.Mapping {
			m := workload.PaperFull()
			var keep []*frag.Fragment
			for _, f := range m.Frags {
				if f.Set == "" || f.Set != "Persons" {
					keep = append(keep, f)
				}
			}
			m.Frags = keep
			return m
		},
		// Foreign key referencing a table no fragment maps.
		"FKUnmappedTable": func() *frag.Mapping {
			m := workload.PaperInitial()
			if err := m.Store.AddForeignKey("HR", rel.ForeignKey{
				Name: "fk_bad", Cols: []string{"Id"}, RefTable: "Client", RefCols: []string{"Cid"},
			}); err != nil {
				t.Fatal(err)
			}
			return m
		},
		// Overlapping, non-equivalent fragments forced onto one table.
		"OverlappingFrags": func() *frag.Mapping {
			m := workload.PartitionedAgeModel()
			for _, f := range m.Frags {
				if f.Table == "Adult" {
					f.ClientCond = cond.NewAnd(
						cond.TypeIs{Type: "Person"},
						cond.Cmp{Attr: "Age", Op: cond.OpGe, Val: cond.Int(10)},
					)
				}
			}
			for _, f := range m.Frags {
				f.Table = "Adult"
			}
			return m
		},
		// Two fragments writing one column from different attributes.
		"ConflictingWriters": func() *frag.Mapping {
			c := edm.NewSchema()
			must := func(err error) {
				if err != nil {
					t.Fatal(err)
				}
			}
			must(c.AddType(edm.EntityType{
				Name: "T",
				Attrs: []edm.Attribute{
					{Name: "Id", Type: cond.KindInt},
					{Name: "A", Type: cond.KindString, Nullable: true},
					{Name: "B", Type: cond.KindString, Nullable: true},
				},
				Key: []string{"Id"},
			}))
			must(c.AddSet(edm.EntitySet{Name: "Ts", Type: "T"}))
			s := rel.NewSchema()
			must(s.AddTable(rel.Table{
				Name: "Tab",
				Cols: []rel.Column{
					{Name: "Id", Type: cond.KindInt},
					{Name: "X", Type: cond.KindString, Nullable: true},
				},
				Key: []string{"Id"},
			}))
			m := &frag.Mapping{Client: c, Store: s}
			m.Frags = append(m.Frags,
				&frag.Fragment{
					ID: "fa", Set: "Ts", ClientCond: cond.TypeIs{Type: "T"},
					Attrs: []string{"Id", "A"}, Table: "Tab", StoreCond: cond.True{},
					ColOf: map[string]string{"Id": "Id", "A": "X"},
				},
				&frag.Fragment{
					ID: "fb", Set: "Ts", ClientCond: cond.TypeIs{Type: "T"},
					Attrs: []string{"Id", "B"}, Table: "Tab", StoreCond: cond.True{},
					ColOf: map[string]string{"Id": "Id", "B": "X"},
				},
			)
			return m
		},
		// A type none of the fragments' conditions admit into a cell it
		// should occupy: drop a rim attribute mapping so an attribute is
		// lost in some client cell (exercises the per-set cell walk).
		"LostAttribute": func() *frag.Mapping {
			m := workload.HubRim(workload.HubRimOptions{N: 2, M: 2, TPH: true})
			for _, f := range m.Frags {
				if len(f.Attrs) > 1 {
					f.Attrs = f.Attrs[:len(f.Attrs)-1]
					break
				}
			}
			return m
		},
	}
}

// compileAt compiles a fresh instance of the model at the given worker
// count and returns the views, stats, and error.
func compileAt(mk func() *frag.Mapping, workers int) (*incmap.Views, incmap.CompileStats, error) {
	return incmap.CompileWith(mk(), incmap.CompilerOptions{Parallelism: workers})
}

// TestParallelCompileDeterministic: on healthy models every worker count
// yields views structurally identical to the sequential compile, and the
// same cell count.
func TestParallelCompileDeterministic(t *testing.T) {
	for name, mk := range seedModels() {
		t.Run(name, func(t *testing.T) {
			seqViews, seqStats, err := compileAt(mk, 1)
			if err != nil {
				t.Fatalf("sequential compile failed: %v", err)
			}
			for _, workers := range []int{2, 3, 8} {
				views, stats, err := compileAt(mk, workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !reflect.DeepEqual(seqViews, views) {
					t.Fatalf("workers=%d produced different views", workers)
				}
				if stats.CellsVisited != seqStats.CellsVisited {
					t.Fatalf("workers=%d visited %d cells, sequential visited %d",
						workers, stats.CellsVisited, seqStats.CellsVisited)
				}
				if stats.Workers != int64(workers) {
					t.Fatalf("stats.Workers = %d, want %d", stats.Workers, workers)
				}
			}
		})
	}
}

// TestParallelCompileErrorsByteIdentical: on broken models every worker
// count reports the exact error string the sequential compile reports —
// the first error in canonical order, not an arbitrary worker's.
func TestParallelCompileErrorsByteIdentical(t *testing.T) {
	for name, mk := range brokenModels(t) {
		t.Run(name, func(t *testing.T) {
			_, _, seqErr := compileAt(mk, 1)
			if seqErr == nil {
				t.Fatal("broken model compiled cleanly; recipe is stale")
			}
			var ve *compiler.ValidationError
			wantValidation := errors.As(seqErr, &ve)
			for _, workers := range []int{2, 3, 8} {
				// Repeat each count a few times: a racy error selection
				// would only fail intermittently.
				for round := 0; round < 4; round++ {
					_, _, err := compileAt(mk, workers)
					if err == nil {
						t.Fatalf("workers=%d round=%d: error lost", workers, round)
					}
					if err.Error() != seqErr.Error() {
						t.Fatalf("workers=%d round=%d:\n  parallel:   %v\n  sequential: %v",
							workers, round, err, seqErr)
					}
					if wantValidation && !errors.As(err, &ve) {
						t.Fatalf("workers=%d: error lost its *ValidationError type: %v", workers, err)
					}
				}
			}
		})
	}
}

// TestParallelSharedSatCache: a cache shared across compilations changes
// cost (second run is all hits) but never results.
func TestParallelSharedSatCache(t *testing.T) {
	cache := incmap.NewSatCache()
	mk := func() *frag.Mapping {
		return workload.HubRim(workload.HubRimOptions{N: 2, M: 3, TPH: true})
	}
	opts := incmap.CompilerOptions{Parallelism: 4, SatCache: cache}
	cold, coldStats, err := incmap.CompileWith(mk(), opts)
	if err != nil {
		t.Fatal(err)
	}
	warm, warmStats, err := incmap.CompileWith(mk(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("warm-cache compile produced different views")
	}
	if warmStats.CacheMisses != 0 {
		t.Fatalf("warm compile missed the cache %d times (hits=%d)",
			warmStats.CacheMisses, warmStats.CacheHits)
	}
	if coldStats.CacheMisses == 0 || warmStats.CacheHits == 0 {
		t.Fatalf("cache counters implausible: cold=%+v warm=%+v", coldStats, warmStats)
	}
	if st := cache.Stats(); st.Entries == 0 {
		t.Fatalf("shared cache is empty: %+v", st)
	}
}

// TestParallelDefaultWorkers: Parallelism 0 resolves to GOMAXPROCS and
// still matches sequential output on a model with a real cell space.
func TestParallelDefaultWorkers(t *testing.T) {
	mk := func() *frag.Mapping {
		return workload.HubRim(workload.HubRimOptions{N: 2, M: 3, TPH: true})
	}
	seqViews, _, err := compileAt(mk, 1)
	if err != nil {
		t.Fatal(err)
	}
	views, stats, err := compileAt(mk, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers < 1 {
		t.Fatalf("Workers = %d", stats.Workers)
	}
	if !reflect.DeepEqual(seqViews, views) {
		t.Fatal("default-parallelism compile differs from sequential")
	}
}

// TestParallelNaiveCells: the NaiveCells ablation composes with the worker
// pool (spans degrade to a single sequential span) without changing
// results.
func TestParallelNaiveCells(t *testing.T) {
	mk := func() *frag.Mapping {
		return workload.HubRim(workload.HubRimOptions{N: 1, M: 3, TPH: true})
	}
	base, baseStats, err := incmap.CompileWith(mk(), incmap.CompilerOptions{NaiveCells: true, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, parStats, err := incmap.CompileWith(mk(), incmap.CompilerOptions{NaiveCells: true, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, par) {
		t.Fatal("naive-cells parallel compile differs from sequential")
	}
	if baseStats.CellsVisited != parStats.CellsVisited {
		t.Fatalf("naive cell counts differ: %d vs %d", baseStats.CellsVisited, parStats.CellsVisited)
	}
}
