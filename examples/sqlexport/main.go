// The sqlexport example shows the deployment-facing side of the compiler:
// after a model is compiled (and evolved), the store schema is exported as
// CREATE TABLE DDL and each query view as an ANSI SQL SELECT — the
// statements a real relational backend would run, analogous to the
// generated-views file Entity Framework ships with an application (§4.1 of
// the paper).
package main

import (
	"fmt"
	"log"

	incmap "github.com/ormkit/incmap"
	"github.com/ormkit/incmap/internal/workload"
)

func main() {
	// Start from the paper's full Figure 1 model and evolve it once more,
	// so the exported SQL reflects an incrementally compiled mapping.
	m := workload.PaperFull()
	views, err := incmap.Compile(m)
	if err != nil {
		log.Fatal(err)
	}
	op, err := incmap.PlanAddEntity(m, "Manager", "Employee",
		[]incmap.Attribute{{Name: "Grade", Type: incmap.KindInt, Nullable: true}})
	if err != nil {
		log.Fatal(err)
	}
	m, views, err = incmap.NewIncremental().Apply(m, views, op)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("-- store schema DDL ------------------------------------")
	fmt.Println(incmap.GenerateDDL(m))

	for _, ty := range []string{"Manager", "Employee"} {
		sql, err := incmap.GenerateSQL(m, views.Query[ty])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("-- SQL executed for queries over %s --------------------\n%s\n\n", ty, sql)
	}

	// The exported SQL is only trustworthy because the mapping validates;
	// demonstrate the runtime agrees on random data.
	for seed := uint32(1); seed <= 3; seed++ {
		if err := incmap.Roundtrip(m, views, randomState(m, seed)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("-- verified: 3 random client states roundtrip through these views")
}

func randomState(m *incmap.Mapping, seed uint32) *incmap.ClientState {
	// The library's random-state generator is reachable through the CLI's
	// -verify flag; examples keep to the public API, so build a small
	// deterministic state by hand.
	cs := incmap.NewClientState()
	base := int64(seed) * 100
	cs.Insert("Persons", &incmap.Entity{Type: "Person", Attrs: incmap.Row{
		"Id": incmap.Int(base + 1), "Name": incmap.Str("p")}})
	cs.Insert("Persons", &incmap.Entity{Type: "Manager", Attrs: incmap.Row{
		"Id": incmap.Int(base + 2), "Name": incmap.Str("m"),
		"Department": incmap.Str("hw"), "Grade": incmap.Int(int64(seed))}})
	cs.Insert("Persons", &incmap.Entity{Type: "Customer", Attrs: incmap.Row{
		"Id": incmap.Int(base + 3), "CredScore": incmap.Int(640)}})
	cs.Relate("Supports", incmap.AssocPair{Ends: incmap.Row{
		"Customer_Id": incmap.Int(base + 3), "Employee_Id": incmap.Int(base + 2)}})
	return cs
}
