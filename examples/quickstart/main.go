// The quickstart example rebuilds the running example of Bernstein et al.
// (SIGMOD 2013) — Figure 1's Person/Employee/Customer model — through the
// public API: it starts from a single mapped entity type, evolves the
// model with three incremental SMOs (Examples 1–7 of the paper), prints
// the generated query view for Person (the Figure 2 view), and runs data
// through the compiled mapping in both directions.
package main

import (
	"fmt"
	"log"

	incmap "github.com/ormkit/incmap"
	"github.com/ormkit/incmap/internal/workload"
)

func main() {
	// Example 1: the initial model maps Person(Id, Name) to table HR.
	m := workload.PaperInitial()
	views, err := incmap.Compile(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("initial model compiled: Person → HR")

	ic := incmap.NewIncremental()

	// Example 1–3: add Employee, TPT on table Emp.
	m, views, err = ic.Apply(m, views, incmap.AddEntityTPT(
		"Employee", "Person",
		[]incmap.Attribute{{Name: "Department", Type: incmap.KindString, Nullable: true}},
		"Emp", map[string]string{"Id": "Id", "Department": "Dept"},
	))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("added Employee (TPT → Emp)")

	// Example 4–5: add Customer, TPC on table Client.
	m, views, err = ic.Apply(m, views, incmap.AddEntityTPC(
		"Customer", "Person",
		[]incmap.Attribute{
			{Name: "CredScore", Type: incmap.KindInt, Nullable: true},
			{Name: "BillAddr", Type: incmap.KindString, Nullable: true},
		},
		"Client", map[string]string{"Id": "Cid", "Name": "Name", "CredScore": "Score", "BillAddr": "Addr"},
	))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("added Customer (TPC → Client)")

	// Example 7: add the Supports association over Client's Eid column.
	m, views, err = ic.Apply(m, views, &incmap.AddAssociationFK{
		Name: "Supports",
		E1:   "Customer", Mult1: incmap.Many,
		E2: "Employee", Mult2: incmap.ZeroOne,
		Table:    "Client",
		KeyCols1: []string{"Cid"},
		KeyCols2: []string{"Eid"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("added association Supports (FK → Client.Eid)")

	// The incrementally evolved query view for Person has the Figure 2
	// shape: a left outer join, a UNION ALL, and a CASE-style constructor.
	fmt.Println("\n--- query view for entity set Persons (cf. Figure 2) ---")
	fmt.Println(incmap.FormatView(views.Query["Person"]))

	// Push objects through the update views and read them back.
	db := incmap.Open(m, views)
	if err := db.Save(workload.PaperClientState()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- store contents after saving five entities ---")
	for _, table := range []string{"HR", "Emp", "Client"} {
		fmt.Printf("%-8s", table)
		for _, row := range db.Table(table) {
			fmt.Printf(" {%s}", row.Canonical())
		}
		fmt.Println()
	}

	persons, err := db.Query("Person", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- entities visible through the Person view ---")
	for _, e := range persons {
		fmt.Println("  ", e.Canonical())
	}

	// The roundtripping guarantee: what we stored is exactly what we read.
	if err := incmap.Roundtrip(m, views, workload.PaperClientState()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nroundtrip verified: V ∘ Q = identity on this state")
}
