// The partitioned example works through §3.3 of the paper: entity types
// horizontally partitioned across tables by client-side conditions. It
// shows the Adult/Young age partition, the coverage tautology that
// validation proves (age >= 18 OR age < 18), the gender = 'M'/'F' example
// where an attribute is never stored but recovered from partition
// constants, and a partition with a hole being rejected.
package main

import (
	"fmt"
	"log"

	incmap "github.com/ormkit/incmap"
	"github.com/ormkit/incmap/internal/workload"
)

func main() {
	// Part 1: Adult/Young. Persons are stored in one of two tables
	// depending on their age; the mapping validates because the two
	// conditions cover every non-null age.
	fmt.Println("=== Adult/Young partition (§3.3) ===")
	m := workload.PartitionedAgeModel()
	views, err := incmap.Compile(m)
	if err != nil {
		log.Fatal(err)
	}
	db := incmap.Open(m, views)
	if err := db.Save(workload.PartitionedAgeState()); err != nil {
		log.Fatal(err)
	}
	for _, table := range []string{"Adult", "Young"} {
		fmt.Printf("%-6s:", table)
		for _, row := range db.Table(table) {
			fmt.Printf(" {%s}", row.Canonical())
		}
		fmt.Println()
	}
	if err := incmap.Roundtrip(m, views, workload.PartitionedAgeState()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("roundtrip holds: every person, including the age = 18 boundary, is recovered")

	// Part 2: a partition with a hole. Moving the adult boundary to 19
	// leaves age = 18 uncovered; the coverage tautology fails and the
	// compiler rejects the mapping.
	fmt.Println("\n=== Partition with a hole is rejected ===")
	holey := workload.PartitionedAgeModel()
	for _, f := range holey.Frags {
		if f.Table == "Adult" {
			f.ClientCond = incmap.And(
				incmap.IsOf("Person"),
				incmap.MustParseCond("Age >= 19"),
			)
		}
	}
	if _, err := incmap.Compile(holey); err != nil {
		fmt.Printf("rejected as expected:\n  %v\n", err)
	} else {
		log.Fatal("a lossy partition was accepted")
	}

	// Part 3: the gender example. Ids are split into Men/Women tables and
	// names into a shared table; the Gender attribute itself is never
	// stored — the query view reconstructs it as a constant per partition,
	// and validation proves (gender = 'M' OR gender = 'F') is a tautology
	// over the two-valued domain.
	fmt.Println("\n=== Gender constants (§3.3) ===")
	g := workload.GenderConstantModel()
	gviews, err := incmap.Compile(g)
	if err != nil {
		log.Fatal(err)
	}
	gdb := incmap.Open(g, gviews)
	if err := gdb.Save(workload.GenderConstantState()); err != nil {
		log.Fatal(err)
	}
	for _, table := range []string{"Men", "Women", "Name"} {
		fmt.Printf("%-6s:", table)
		for _, row := range gdb.Table(table) {
			fmt.Printf(" {%s}", row.Canonical())
		}
		fmt.Println()
	}
	people, err := gdb.Query("Person", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reconstructed entities (Gender comes from the partition constants):")
	for _, e := range people {
		fmt.Println("  ", e.Canonical())
	}
	if err := incmap.Roundtrip(g, gviews, workload.GenderConstantState()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("roundtrip holds even though no table stores Gender")
}
