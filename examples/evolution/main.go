// The evolution example demonstrates the developer workflow the paper
// targets (§1.2): a model that has already been validated and compiled is
// edited repeatedly during development. Each edit compiles incrementally
// in milliseconds while a full recompilation of the same model takes
// orders of magnitude longer; and an edit that would break roundtripping
// (the Figure 6 foreign-key scenario) is rejected with the model left
// untouched.
package main

import (
	"fmt"
	"log"
	"time"

	incmap "github.com/ormkit/incmap"
	"github.com/ormkit/incmap/internal/workload"
)

func main() {
	// A mid-sized project: a 300-type chain model (the paper's Figure 8
	// shape, scaled to keep this demo quick).
	const size = 300
	fmt.Printf("building the %d-entity chain model of Figure 8...\n", size)
	m := workload.Chain(size)

	start := time.Now()
	views, err := incmap.Compile(m)
	if err != nil {
		log.Fatal(err)
	}
	fullDur := time.Since(start)
	fmt.Printf("full compilation: %v\n\n", fullDur)

	ic := incmap.NewIncremental()

	// Development loop: three small edits, each compiled incrementally.
	edits := []struct {
		desc string
		make func() (incmap.SMO, error)
	}{
		{"add subtype PremiumEntity under Entity150 (style inferred)", func() (incmap.SMO, error) {
			return incmap.PlanAddEntity(m, "PremiumEntity", "Entity150",
				[]incmap.Attribute{{Name: "Tier", Type: incmap.KindInt, Nullable: true}})
		}},
		{"add association AuditedBy between Entity10 and Entity20", func() (incmap.SMO, error) {
			return incmap.PlanAddAssociation(m, "AuditedBy", "Entity10", "Entity20",
				incmap.Many, incmap.ZeroOne)
		}},
		{"add property Note to Entity150", func() (incmap.SMO, error) {
			if err := m.Store.AddTable(incmap.Table{
				Name: "TNotes",
				Cols: []incmap.Column{
					{Name: "Id", Type: incmap.KindInt},
					{Name: "Note", Type: incmap.KindString, Nullable: true},
				},
				Key: []string{"Id"},
			}); err != nil {
				return nil, err
			}
			return &incmap.AddProperty{
				Type:  "Entity150",
				Attr:  incmap.Attribute{Name: "Note", Type: incmap.KindString, Nullable: true},
				Table: "TNotes", Col: "Note",
			}, nil
		}},
	}
	var totalIncremental time.Duration
	for _, e := range edits {
		m = m.Clone() // the developer's working copy
		op, err := e.make()
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		m, views, err = ic.Apply(m, views, op)
		d := time.Since(t0)
		if err != nil {
			log.Fatal(err)
		}
		totalIncremental += d
		fmt.Printf("%-60s %12v (%.0fx faster than full)\n", e.desc, d, fullDur.Seconds()/d.Seconds())
	}

	// A bad edit: a TPC subtype under an association endpoint — the
	// Figure 6 scenario. Validation must abort and leave the model as-is.
	fmt.Println("\nattempting an invalid edit (Figure 6: TPC under an association endpoint)...")
	bad := m.Clone()
	if err := bad.Store.AddTable(incmap.Table{
		Name: "TRogue",
		Cols: []incmap.Column{
			{Name: "Id", Type: incmap.KindInt},
			{Name: "EntityAtt2", Type: incmap.KindString, Nullable: true},
			{Name: "EntityAtt3", Type: incmap.KindString, Nullable: true},
			{Name: "EntityAtt4", Type: incmap.KindString, Nullable: true},
		},
		Key: []string{"Id"},
	}); err != nil {
		log.Fatal(err)
	}
	typesBefore := len(bad.Client.Types())
	_, _, err = ic.Apply(bad, views, incmap.AddEntityTPC("Rogue", "Entity50", nil, "TRogue",
		map[string]string{
			"Id": "Id", "EntityAtt2": "EntityAtt2",
			"EntityAtt3": "EntityAtt3", "EntityAtt4": "EntityAtt4",
		}))
	if err == nil {
		log.Fatal("the invalid edit was accepted!")
	}
	fmt.Printf("rejected as expected:\n  %v\n", err)
	if len(bad.Client.Types()) != typesBefore {
		log.Fatal("the aborted SMO modified the model")
	}
	fmt.Println("model untouched after the abort — the paper's failure semantics")

	fmt.Printf("\nsummary: full compile %v; three incremental edits %v total (%.0fx faster)\n",
		fullDur, totalIncremental, fullDur.Seconds()/totalIncremental.Seconds())
}
