// The blogapp example builds a realistic application domain — users,
// posts and comments with an inheritance hierarchy over content — maps it
// with a mix of strategies (users TPT, content TPH, tags via a join
// table), and drives the ORM runtime: inserts, polymorphic queries,
// updates through the client view, and inspection of the translated
// relational state.
package main

import (
	"fmt"
	"log"

	incmap "github.com/ormkit/incmap"
)

func buildMapping() *incmap.Mapping {
	c := incmap.NewClientSchema()
	must(c.AddType(incmap.EntityType{
		Name: "User",
		Attrs: []incmap.Attribute{
			{Name: "Id", Type: incmap.KindInt},
			{Name: "Handle", Type: incmap.KindString},
		},
		Key: []string{"Id"},
	}))
	must(c.AddType(incmap.EntityType{
		Name: "Content",
		Attrs: []incmap.Attribute{
			{Name: "Id", Type: incmap.KindInt},
			{Name: "Body", Type: incmap.KindString, Nullable: true},
		},
		Key: []string{"Id"},
	}))
	must(c.AddSet(incmap.EntitySet{Name: "Users", Type: "User"}))
	must(c.AddSet(incmap.EntitySet{Name: "Contents", Type: "Content"}))

	s := incmap.NewStoreSchema()
	must(s.AddTable(incmap.Table{
		Name: "users",
		Cols: []incmap.Column{
			{Name: "id", Type: incmap.KindInt},
			{Name: "handle", Type: incmap.KindString},
		},
		Key: []string{"id"},
	}))
	must(s.AddTable(incmap.Table{
		Name: "content",
		Cols: []incmap.Column{
			{Name: "id", Type: incmap.KindInt},
			{Name: "body", Type: incmap.KindString, Nullable: true},
			{Name: "kind", Type: incmap.KindString,
				Enum: []incmap.Value{incmap.Str("Content"), incmap.Str("Post"), incmap.Str("Comment")}},
			{Name: "title", Type: incmap.KindString, Nullable: true},
			{Name: "author", Type: incmap.KindInt, Nullable: true},
			{Name: "parent", Type: incmap.KindInt, Nullable: true},
		},
		Key: []string{"id"},
		FKs: []incmap.ForeignKey{
			{Name: "fk_author", Cols: []string{"author"}, RefTable: "users", RefCols: []string{"id"}},
			{Name: "fk_parent", Cols: []string{"parent"}, RefTable: "content", RefCols: []string{"id"}},
		},
	}))

	m := &incmap.Mapping{Client: c, Store: s}
	m.Frags = append(m.Frags,
		&incmap.Fragment{
			ID: "f_user", Set: "Users",
			ClientCond: incmap.IsOf("User"),
			Attrs:      []string{"Id", "Handle"},
			Table:      "users", StoreCond: incmap.True,
			ColOf: map[string]string{"Id": "id", "Handle": "handle"},
		},
		&incmap.Fragment{
			ID: "f_content", Set: "Contents",
			ClientCond: incmap.IsOfOnly("Content"),
			Attrs:      []string{"Id", "Body"},
			Table:      "content",
			StoreCond:  incmap.MustParseCond("kind = 'Content'"),
			ColOf:      map[string]string{"Id": "id", "Body": "body"},
		},
	)
	return m
}

func main() {
	m := buildMapping()
	views, err := incmap.Compile(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("base blog mapping compiled (User → users, Content → content TPH)")

	// Evolve the content hierarchy incrementally: posts and comments are
	// TPH subtypes in the content table; authorship and threading are
	// FK-mapped associations; tagging is a many-to-many join table.
	ic := incmap.NewIncremental()
	m, views, err = ic.ApplyAll(m, views,
		incmap.AddEntityTPH("Post", "Content",
			[]incmap.Attribute{{Name: "Title", Type: incmap.KindString, Nullable: true}},
			"content", "kind", incmap.Str("Post"),
			map[string]string{"Id": "id", "Body": "body", "Title": "title"}),
		incmap.AddEntityTPH("Comment", "Content",
			nil,
			"content", "kind", incmap.Str("Comment"),
			map[string]string{"Id": "id", "Body": "body"}),
		&incmap.AddAssociationFK{
			Name: "Wrote",
			E1:   "Content", Mult1: incmap.Many,
			E2: "User", Mult2: incmap.ZeroOne,
			Table: "content", KeyCols1: []string{"id"}, KeyCols2: []string{"author"},
		},
		&incmap.AddAssociationFK{
			Name: "ReplyTo",
			E1:   "Content", Mult1: incmap.Many,
			E2: "Content", Mult2: incmap.ZeroOne,
			Table: "content", KeyCols1: []string{"id"}, KeyCols2: []string{"parent"},
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("evolved: +Post (TPH), +Comment (TPH), +Wrote (FK), +ReplyTo (FK)")

	db := incmap.Open(m, views)
	seed := incmap.NewClientState()
	seed.Insert("Users", &incmap.Entity{Type: "User", Attrs: incmap.Row{
		"Id": incmap.Int(1), "Handle": incmap.Str("ada")}})
	seed.Insert("Users", &incmap.Entity{Type: "User", Attrs: incmap.Row{
		"Id": incmap.Int(2), "Handle": incmap.Str("lin")}})
	seed.Insert("Contents", &incmap.Entity{Type: "Post", Attrs: incmap.Row{
		"Id": incmap.Int(10), "Title": incmap.Str("Mapping compilation"),
		"Body": incmap.Str("Validation is NP-hard...")}})
	seed.Insert("Contents", &incmap.Entity{Type: "Comment", Attrs: incmap.Row{
		"Id": incmap.Int(11), "Body": incmap.Str("Nice speedups!")}})
	seed.Relate("Wrote", incmap.AssocPair{Ends: incmap.Row{
		"Content_Id": incmap.Int(10), "User_Id": incmap.Int(1)}})
	seed.Relate("Wrote", incmap.AssocPair{Ends: incmap.Row{
		"Content_Id": incmap.Int(11), "User_Id": incmap.Int(2)}})
	seed.Relate("ReplyTo", incmap.AssocPair{Ends: incmap.Row{
		"Content1_Id": incmap.Int(11), "Content2_Id": incmap.Int(10)}})
	if err := db.Save(seed); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n--- content table after update-view translation ---")
	for _, row := range db.Table("content") {
		fmt.Println("  ", row.Canonical())
	}

	posts, err := db.Query("Post", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- posts (polymorphic query through the Post view) ---")
	for _, p := range posts {
		fmt.Println("  ", p.Canonical())
	}

	// Edit a post through the object view; the change lands in the table.
	err = db.Update(func(cs *incmap.ClientState) error {
		for _, e := range cs.Entities["Contents"] {
			if e.Type == "Post" && e.Attrs["Id"].IntVal() == 10 {
				e.Attrs["Title"] = incmap.Str("Incremental mapping compilation")
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- content table after editing the post's title ---")
	for _, row := range db.Table("content") {
		fmt.Println("  ", row.Canonical())
	}

	replies, err := db.Related("ReplyTo")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- reply threading recovered from the parent column ---")
	for _, p := range replies {
		fmt.Println("  ", p.Ends.Canonical())
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
