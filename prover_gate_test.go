//go:build provergate

package incmap_test

// The prover regression gate, run by the prover-gate CI job with
// -tags provergate. It is excluded from ordinary test runs because it
// needs tens of seconds of quiet CPU to measure medians meaningfully.
//
// Absolute wall times are useless as a recorded baseline — CI machines
// differ run to run — so the gate borrows the tracer-overhead gate's
// trick of comparing two arms measured in the same run: each prover
// workload's median is divided by the median of a calibration loop
// (frozen, prover-free code living in this file) measured interleaved
// with it. The recorded baseline stores those dimensionless ratios; a
// workload whose ratio grows more than 10% over the recording fails the
// gate. Speedups re-record the baseline (see BENCH_prover_baseline.json).

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"github.com/ormkit/incmap/internal/compiler"
	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/workload"
)

// proverBaselineFile is the committed recording; proverResultFile is the
// artifact the CI job uploads from each run.
const (
	proverBaselineFile = "BENCH_prover_baseline.json"
	proverResultFile   = "BENCH_prover_gate.json"
)

// proverGateSlack is the allowed growth of a calibrated ratio before the
// gate fails: >10% median regression versus the recorded baseline.
const proverGateSlack = 1.10

type proverBaseline struct {
	// Ratios maps workload name -> median(workload) / median(calibration)
	// as recorded on the reference run.
	Ratios map[string]float64 `json:"ratios"`
	Note   string             `json:"note,omitempty"`
}

type proverGateResult struct {
	CalibrationMedian string             `json:"calibrationMedian"`
	Medians           map[string]string  `json:"medians"`
	Ratios            map[string]float64 `json:"ratios"`
	BaselineRatios    map[string]float64 `json:"baselineRatios"`
}

// calibrate is the yardstick: a fixed FNV-1a hashing loop that touches no
// prover code, so its cost moves only with the machine, never with the
// code under test. Do not change it without re-recording the baseline.
func calibrate() time.Duration {
	const rounds = 1 << 22
	var buf [64]byte
	for i := range buf {
		buf[i] = byte(i * 37)
	}
	begin := time.Now()
	var acc uint64 = 14695981039346656037
	for i := 0; i < rounds; i++ {
		for _, b := range buf {
			acc ^= uint64(b)
			acc *= 1099511628211
		}
		buf[i&63] = byte(acc)
	}
	if acc == 0 {
		panic("unreachable: keeps the loop from being optimized away")
	}
	return time.Since(begin)
}

// satTypeHierarchy is BenchmarkSatisfiableTypeHierarchy's types=64 point:
// one Satisfiable call over a 64-type hierarchy with a wide disjunction.
func satTypeHierarchy() func() {
	const n = 64
	types := make([]string, n)
	sub := map[string]map[string]bool{}
	for i := range types {
		types[i] = fmt.Sprintf("T%d", i)
		if i > 0 {
			sub[types[i]] = map[string]bool{types[0]: true}
		}
	}
	th := &cond.MapTheory{
		Types: map[string][]string{"": types},
		Sub:   sub,
		Domains: map[string]cond.Domain{
			"x": {Kind: cond.KindInt},
			"d": {Kind: cond.KindString, Enum: []cond.Value{cond.String("a"), cond.String("b"), cond.String("c")}},
		},
	}
	var parts []cond.Expr
	for i := 1; i < n; i += 2 {
		parts = append(parts, cond.TypeIs{Type: fmt.Sprintf("T%d", i)})
	}
	e := cond.NewAnd(cond.NewOr(parts...), cond.NewNot(cond.TypeIs{Type: "T1", Only: true}))
	return func() {
		// 200 solves per trial lift the point out of timer granularity.
		for i := 0; i < 200; i++ {
			if !cond.Satisfiable(th, e) {
				panic("unexpectedly unsatisfiable")
			}
		}
	}
}

// parallelValidate is BenchmarkParallelValidate's workers=1 arm: a full
// sequential compile of the paper's worst published point (N=3, M=5 TPH).
func parallelValidate() func() {
	return func() {
		m := workload.HubRim(workload.HubRimOptions{N: 3, M: 5, TPH: true})
		c := &compiler.Compiler{Opts: compiler.Options{Parallelism: 1}}
		if _, err := c.Compile(m); err != nil {
			panic(err)
		}
	}
}

// TestProverRegressionGate interleaves trials of each prover workload
// with the calibration loop, compares calibrated median ratios against
// the committed baseline, and writes the run's numbers to
// BENCH_prover_gate.json for artifact upload.
func TestProverRegressionGate(t *testing.T) {
	const trials = 5
	workloads := []struct {
		name string
		run  func()
	}{
		{"sat_type_hierarchy", satTypeHierarchy()},
		{"parallel_validate_w1", parallelValidate()},
	}

	raw, err := os.ReadFile(proverBaselineFile)
	if err != nil {
		t.Fatalf("reading %s: %v", proverBaselineFile, err)
	}
	var base proverBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("parsing %s: %v", proverBaselineFile, err)
	}

	for _, w := range workloads { // warm-up: page in code, build caches
		w.run()
	}
	calibrate()

	med := func(ds []time.Duration) time.Duration {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[len(ds)/2]
	}
	measure := func() (time.Duration, map[string]time.Duration) {
		var calib []time.Duration
		samples := map[string][]time.Duration{}
		for i := 0; i < trials; i++ {
			calib = append(calib, calibrate())
			for _, w := range workloads {
				begin := time.Now()
				w.run()
				samples[w.name] = append(samples[w.name], time.Since(begin))
			}
		}
		medians := map[string]time.Duration{}
		for _, w := range workloads {
			medians[w.name] = med(samples[w.name])
		}
		return med(calib), medians
	}

	// Calibrated ratios still carry a few percent of machine noise, so a
	// failed comparison is remeasured once from scratch and only a
	// repeated failure — the signature of a real regression rather than
	// a noisy run — fails the gate.
	var result proverGateResult
	var failures []string
	for attempt := 1; attempt <= 2; attempt++ {
		mc, medians := measure()
		t.Logf("attempt %d: calibration median %v", attempt, mc)
		result = proverGateResult{
			CalibrationMedian: mc.String(),
			Medians:           map[string]string{},
			Ratios:            map[string]float64{},
			BaselineRatios:    base.Ratios,
		}
		failures = nil
		for _, w := range workloads {
			m := medians[w.name]
			ratio := float64(m) / float64(mc)
			result.Medians[w.name] = m.String()
			result.Ratios[w.name] = ratio
			want, ok := base.Ratios[w.name]
			if !ok {
				failures = append(failures, fmt.Sprintf("%s: no recorded baseline ratio — add it to %s", w.name, proverBaselineFile))
				continue
			}
			t.Logf("%s: median %v, ratio %.3f (baseline %.3f, %+.1f%%)",
				w.name, m, ratio, want, 100*(ratio-want)/want)
			if ratio > proverGateSlack*want {
				failures = append(failures, fmt.Sprintf("%s: calibrated ratio %.3f regressed >%.0f%% over recorded %.3f",
					w.name, ratio, 100*(proverGateSlack-1), want))
			}
		}
		if len(failures) == 0 {
			break
		}
	}

	if out, err := json.MarshalIndent(result, "", "  "); err == nil {
		if err := os.WriteFile(proverResultFile, append(out, '\n'), 0o644); err != nil {
			t.Logf("writing %s: %v", proverResultFile, err)
		}
	}
	for _, f := range failures {
		t.Error(f)
	}
	if len(failures) > 0 {
		t.Log("if the regression is intended (e.g. a correctness fix), re-record BENCH_prover_baseline.json from this run's ratios")
	}
}
