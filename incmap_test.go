package incmap_test

import (
	"bytes"
	"strings"
	"testing"

	incmap "github.com/ormkit/incmap"
	"github.com/ormkit/incmap/internal/workload"
)

// TestPublicAPIEndToEnd drives the whole system through the public facade
// only: build a schema, compile, evolve incrementally, run the ORM, and
// serialize.
func TestPublicAPIEndToEnd(t *testing.T) {
	m := workload.PaperInitial()
	views, err := incmap.Compile(m)
	if err != nil {
		t.Fatal(err)
	}

	ic := incmap.NewIncremental()
	m, views, err = ic.ApplyAll(m, views,
		incmap.AddEntityTPT("Employee", "Person",
			[]incmap.Attribute{{Name: "Department", Type: incmap.KindString, Nullable: true}},
			"Emp", map[string]string{"Id": "Id", "Department": "Dept"}),
		incmap.AddEntityTPC("Customer", "Person",
			[]incmap.Attribute{
				{Name: "CredScore", Type: incmap.KindInt, Nullable: true},
				{Name: "BillAddr", Type: incmap.KindString, Nullable: true},
			},
			"Client", map[string]string{"Id": "Cid", "Name": "Name", "CredScore": "Score", "BillAddr": "Addr"}),
		&incmap.AddAssociationFK{
			Name: "Supports",
			E1:   "Customer", Mult1: incmap.Many,
			E2: "Employee", Mult2: incmap.ZeroOne,
			Table: "Client", KeyCols1: []string{"Cid"}, KeyCols2: []string{"Eid"},
		},
	)
	if err != nil {
		t.Fatal(err)
	}

	db := incmap.Open(m, views)
	if err := db.Save(workload.PaperClientState()); err != nil {
		t.Fatal(err)
	}
	persons, err := db.Query("Person", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(persons) != 5 {
		t.Fatalf("persons = %d", len(persons))
	}
	if err := incmap.Roundtrip(m, views, workload.PaperClientState()); err != nil {
		t.Fatal(err)
	}

	if s := incmap.InferStyle(m, "Employee"); s != incmap.TPT {
		t.Errorf("style = %v", s)
	}

	out := incmap.FormatView(views.Query["Person"])
	if !strings.Contains(out, "UNION ALL") {
		t.Errorf("Person view missing union:\n%s", out)
	}

	var buf bytes.Buffer
	if err := incmap.EncodeMapping(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := incmap.DecodeMapping(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := incmap.Compile(m2); err != nil {
		t.Fatal(err)
	}
}

func TestConditionHelpers(t *testing.T) {
	e := incmap.And(
		incmap.Or(incmap.IsOfOnly("Person"), incmap.IsOf("Employee")),
		incmap.NotNull("Name"),
	)
	parsed, err := incmap.ParseCond(e.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.String() != e.String() {
		t.Errorf("parse/print drift: %q vs %q", parsed.String(), e.String())
	}
	if incmap.IsNull("X").String() != "X IS NULL" {
		t.Errorf("IsNull printing wrong")
	}
	_ = incmap.True
}

func TestCompileWithStats(t *testing.T) {
	m := workload.PaperFull()
	_, stats, err := incmap.CompileWith(m, incmap.CompilerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CellsVisited == 0 {
		t.Errorf("stats not reported: %+v", stats)
	}
}

func TestPlannerFacade(t *testing.T) {
	m := workload.PaperFull()
	views, err := incmap.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	op, err := incmap.PlanAddEntity(m, "Intern", "Employee",
		[]incmap.Attribute{{Name: "School", Type: incmap.KindString, Nullable: true}})
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := incmap.NewIncremental().Apply(m, views, op)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Client.Type("Intern") == nil {
		t.Fatal("Intern missing")
	}

	target := m2.Client.Clone()
	ops, err := incmap.DiffSchemas(m2, target)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 0 {
		t.Errorf("diff of identical schemas = %v", ops)
	}
}

func TestFacadeSQLAndContainment(t *testing.T) {
	m := workload.PaperFull()
	views, err := incmap.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	ddl := incmap.GenerateDDL(m)
	if !strings.Contains(ddl, "CREATE TABLE Client") {
		t.Errorf("DDL missing Client:\n%s", ddl)
	}
	sql, err := incmap.GenerateSQL(m, views.Query["Employee"])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "FROM Emp") {
		t.Errorf("SQL missing Emp scan:\n%s", sql)
	}
	// The containment checker is usable on compiled views directly: every
	// row of the Employee view appears in the Person view.
	ch := incmap.NewContainmentChecker(m)
	ok, err := ch.Contains(views.Query["Employee"].Q, views.Query["Person"].Q)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("Employee view not contained in Person view")
	}
	if incmap.Bool(true).BoolVal() != true || incmap.Float(1.5).FloatVal() != 1.5 {
		t.Error("value helpers wrong")
	}
	if incmap.Int(3).IntVal() != 3 || incmap.Str("x").Str() != "x" {
		t.Error("value helpers wrong")
	}
}

func TestObservabilityFacade(t *testing.T) {
	sink := incmap.NewRecordingSink()
	tr := incmap.NewTracer(sink)
	_, _, err := incmap.CompileWith(workload.PaperFull(), incmap.CompilerOptions{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	spans := sink.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	var buf bytes.Buffer
	if err := incmap.WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents"`) {
		t.Errorf("not a Chrome trace file: %.80s", buf.String())
	}
	sums := incmap.SummarizePhases(spans)
	if len(sums) == 0 {
		t.Error("no phase summaries")
	}
	snap := incmap.MetricsSnapshot()
	if snap["compile.full"] == 0 {
		t.Errorf("metrics snapshot missing compile.full: %v", snap)
	}
	incmap.PublishMetrics()
	incmap.PublishMetrics() // idempotent
	incmap.SetDefaultTracer(tr)
	incmap.SetDefaultTracer(nil)
}
