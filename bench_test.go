// Benchmarks regenerating the paper's evaluation, one per table/figure.
// See EXPERIMENTS.md for the mapping to the paper and the recorded shapes.
//
// The figure-level series (full parameter sweeps) are printed by
// cmd/mapbench; these benchmarks measure representative points of each
// figure so `go test -bench=.` tracks the same quantities.
package incmap_test

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/ormkit/incmap/internal/compiler"
	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/core"
	"github.com/ormkit/incmap/internal/experiments"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/workload"
)

// --- Figure 4: full compilation of the hub-and-rim model --------------------

// BenchmarkFig4HubRimTPH measures the exponential TPH curve. Points grow
// as 2^(N·M); the default grid stays in the sub-second region and -bench
// with -timeout raised can push further.
func BenchmarkFig4HubRimTPH(b *testing.B) {
	for _, p := range []struct{ n, m int }{
		{1, 1}, {1, 4}, {2, 2}, {2, 4}, {3, 3},
	} {
		b.Run(fmt.Sprintf("N=%d/M=%d", p.n, p.m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := workload.HubRim(workload.HubRimOptions{N: p.n, M: p.m, TPH: true})
				if _, err := compiler.New().Compile(m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4HubRimTPT measures the flat TPT baseline over the same
// schema sizes ("under 0.2 seconds for all cases", §1.1).
func BenchmarkFig4HubRimTPT(b *testing.B) {
	for _, p := range []struct{ n, m int }{
		{1, 1}, {2, 4}, {3, 3}, {4, 8}, {5, 15},
	} {
		b.Run(fmt.Sprintf("N=%d/M=%d", p.n, p.m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := workload.HubRim(workload.HubRimOptions{N: p.n, M: p.m, TPH: false})
				if _, err := compiler.New().Compile(m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelValidate measures the validation worker pool on the
// paper's worst published point, the N=3, M=5 TPH hub-and-rim (589,842
// cells in one table). Workers split the cell space of each table/set, so
// speedup tracks available cores; at one worker the pipeline is exactly
// the sequential algorithm.
func BenchmarkParallelValidate(b *testing.B) {
	workers := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		workers = append(workers, n)
	}
	for _, w := range workers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := workload.HubRim(workload.HubRimOptions{N: 3, M: 5, TPH: true})
				c := &compiler.Compiler{Opts: compiler.Options{Parallelism: w}}
				if _, err := c.Compile(m); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(c.Stats.CellsVisited), "cells/op")
			}
		})
	}
}

// BenchmarkSatCacheWarm measures recompilation against a pre-warmed shared
// decision cache — the steady state of an edit-compile loop where the
// schema facts relevant to most queries are unchanged. The hit rate is
// reported as a benchmark metric; on an identical recompile it is 1.0.
func BenchmarkSatCacheWarm(b *testing.B) {
	mk := func() *frag.Mapping {
		return workload.HubRim(workload.HubRimOptions{N: 2, M: 4, TPH: true})
	}
	for _, warm := range []bool{false, true} {
		name := "cold"
		if warm {
			name = "warm"
		}
		b.Run(name, func(b *testing.B) {
			cache := cond.NewSatCache()
			if warm {
				c := &compiler.Compiler{Opts: compiler.Options{SatCache: cache}}
				if _, err := c.Compile(mk()); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			var hits, misses int64
			for i := 0; i < b.N; i++ {
				opts := compiler.Options{SatCache: cache}
				if !warm {
					opts.SatCache = cond.NewSatCache()
				}
				c := &compiler.Compiler{Opts: opts}
				if _, err := c.Compile(mk()); err != nil {
					b.Fatal(err)
				}
				hits += c.Stats.CacheHits
				misses += c.Stats.CacheMisses
			}
			if hits+misses > 0 {
				b.ReportMetric(float64(hits)/float64(hits+misses), "hit-rate")
			}
		})
	}
}

// --- Figure 9: chain model -----------------------------------------------------

// chainFixture caches the compiled chain model shared by the Figure 9
// benchmarks (full compilation is the expensive baseline being compared
// against, measured separately below).
type fixture struct {
	m     *frag.Mapping
	views *frag.Views
}

var chainFix map[int]*fixture

func chainFixture(b *testing.B, n int) *fixture {
	b.Helper()
	if chainFix == nil {
		chainFix = map[int]*fixture{}
	}
	if f, ok := chainFix[n]; ok {
		return f
	}
	m := workload.Chain(n)
	views, err := compiler.New().Compile(m)
	if err != nil {
		b.Fatal(err)
	}
	f := &fixture{m: m, views: views}
	chainFix[n] = f
	return f
}

// benchChainSize keeps the benchmark suite fast by default; mapbench runs
// the paper's full 1002.
const benchChainSize = 300

// BenchmarkFig9FullCompile is the baseline every SMO is compared against.
func BenchmarkFig9FullCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := workload.Chain(benchChainSize)
		if _, err := compiler.New().Compile(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9SMO measures each suite operation incrementally compiled
// against the compiled chain model.
func BenchmarkFig9SMO(b *testing.B) {
	fix := chainFixture(b, benchChainSize)
	mid := benchChainSize / 2
	ty := func(i int) string { return fmt.Sprintf("Entity%d", i) }
	suite := experiments.Suite(experiments.SuiteTargets{
		TPTParent: ty(mid), TPCParent: ty(mid + 1), TPHParent: ty(mid + 2),
		FKEnd1: ty(benchChainSize / 5), FKEnd2: ty(2 * benchChainSize / 5),
		JTEnd1: ty(3 * benchChainSize / 5), JTEnd2: ty(4 * benchChainSize / 5),
		PropType: ty(mid),
	})
	for _, op := range suite {
		op := op
		b.Run(op.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.RunOp(fix.m, fix.views, op)
				// AE-TPC is legitimately rejected on the chain (the
				// Figure 6 scenario); everything else must pass.
				if r.Err != nil && op.Name != "AE-TPC" {
					b.Fatal(r.Err)
				}
			}
		})
	}
}

// BenchmarkIncrementalSMO measures one SMO applied to the full chain-1002
// model of the paper, comparing the copy-on-write generation path ("cow",
// the production path: Apply's internal clones share untouched fragments,
// schema entries and view trees) against a deep-clone arm that reproduces
// the pre-CoW cost of copying the whole model per SMO. Run with -benchmem:
// the cow arm must be ≥5× faster and allocate ≥10× less than deepclone.
func BenchmarkIncrementalSMO(b *testing.B) {
	const n = 1002
	fix := chainFixture(b, n)
	mid := n / 2
	ty := func(i int) string { return fmt.Sprintf("Entity%d", i) }
	targets := experiments.SuiteTargets{
		TPTParent: ty(mid), TPCParent: ty(mid + 1), TPHParent: ty(mid + 2),
		FKEnd1: ty(n / 5), FKEnd2: ty(2 * n / 5),
		JTEnd1: ty(3 * n / 5), JTEnd2: ty(4 * n / 5),
		PropType: ty(mid),
	}
	var ops []experiments.NamedOp
	for _, op := range experiments.Suite(targets) {
		if op.Name == "AE-TPT" || op.Name == "AE-TPH" {
			ops = append(ops, op)
		}
	}
	for _, op := range ops {
		op := op
		for _, deep := range []bool{false, true} {
			deep := deep
			arm := "cow"
			if deep {
				arm = "deepclone"
			}
			b.Run(op.Name+"/"+arm, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ic := core.NewIncremental()
					m2 := fix.m.Clone()
					if deep {
						// Pre-CoW, Apply deep-copied the model and all
						// views before touching anything; charge that
						// cost to this arm.
						m2 = fix.m.DeepClone()
						fix.views.DeepClone()
					}
					smo, err := op.Make(m2)
					if err != nil {
						b.Fatal(err)
					}
					if _, _, err := ic.Apply(m2, fix.views, smo); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Figure 10: customer model ---------------------------------------------------

// benchCustomerOpt scales the customer model down for the default run;
// mapbench runs the paper's published 230/18/95 statistics.
func benchCustomerOpt() workload.CustomerOptions {
	return workload.CustomerOptions{
		Types: 90, Hierarchies: 10, LargestTPH: 40, Associations: 12, SharedTableFKs: 2,
	}
}

// BenchmarkFig10FullCompile is the customer-model baseline.
func BenchmarkFig10FullCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := workload.Customer(benchCustomerOpt())
		if _, err := compiler.New().Compile(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10SMO measures the SMO suite on the customer model.
func BenchmarkFig10SMO(b *testing.B) {
	m := workload.Customer(benchCustomerOpt())
	views, err := compiler.New().Compile(m)
	if err != nil {
		b.Fatal(err)
	}
	suite := experiments.Suite(experiments.SuiteTargets{
		TPTParent: "H1T1", TPCParent: "H3T0", TPHParent: "H0T2",
		FKEnd1: "H1T0", FKEnd2: "H5T0",
		JTEnd1: "H3T0", JTEnd2: "H7T0",
		PropType: "H1T1",
	})
	for _, op := range suite {
		op := op
		b.Run(op.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.RunOp(m, views, op)
				if r.Err != nil && op.Name != "AE-TPC" {
					b.Fatal(r.Err)
				}
			}
		})
	}
}

// --- Ablations (design decisions of DESIGN.md §6) ----------------------------------

// BenchmarkAblationCellPruning compares theory-pruned cell enumeration
// against the naive 2^n enumeration during full validation.
func BenchmarkAblationCellPruning(b *testing.B) {
	for _, naive := range []bool{false, true} {
		name := "pruned"
		if naive {
			name = "naive"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := workload.HubRim(workload.HubRimOptions{N: 2, M: 3, TPH: true})
				c := &compiler.Compiler{Opts: compiler.Options{NaiveCells: naive}}
				if _, err := c.Compile(m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSimplifier compares incremental compilation with and
// without the outer-join-eliminating simplifier in front of containment.
func BenchmarkAblationSimplifier(b *testing.B) {
	fix := chainFixture(b, 100)
	op := experiments.Suite(experiments.SuiteTargets{
		TPTParent: "Entity50", TPCParent: "Entity51", TPHParent: "Entity52",
		FKEnd1: "Entity10", FKEnd2: "Entity20",
		JTEnd1: "Entity30", JTEnd2: "Entity40",
		PropType: "Entity50",
	})[0] // AE-TPT
	for _, noSimplify := range []bool{false, true} {
		noSimplify := noSimplify
		name := "simplified"
		if noSimplify {
			name = "unsimplified"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ic := &core.Incremental{Opts: core.Options{NoSimplify: noSimplify}}
				m2 := fix.m.Clone()
				smo, err := op.Make(m2)
				if err != nil {
					b.Fatal(err)
				}
				_, _, err = ic.Apply(m2, fix.views, smo)
				switch {
				case err == nil && noSimplify:
					b.Fatal("unsimplified containment unexpectedly accepted the SMO")
				case err != nil && !noSimplify:
					b.Fatal(err)
				}
				// The unsimplified arm measures the time to the (expected)
				// rejection: without the outer-join eliminations the
				// conservative containment approximations are incomplete —
				// the ablation's finding (see EXPERIMENTS.md).
			}
		})
	}
}

// BenchmarkAblationNeighbourhood compares localized validation against
// re-checking every foreign key of the model.
func BenchmarkAblationNeighbourhood(b *testing.B) {
	fix := chainFixture(b, benchChainSize)
	op := experiments.Suite(experiments.SuiteTargets{
		TPTParent: "Entity150", TPCParent: "Entity151", TPHParent: "Entity152",
		FKEnd1: "Entity10", FKEnd2: "Entity20",
		JTEnd1: "Entity30", JTEnd2: "Entity40",
		PropType: "Entity150",
	})[0] // AE-TPT
	for _, wide := range []bool{false, true} {
		name := "neighbourhood"
		if wide {
			name = "all-constraints"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ic := &core.Incremental{Opts: core.Options{WideValidation: wide}}
				m2 := fix.m.Clone()
				smo, err := op.Make(m2)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := ic.Apply(m2, fix.views, smo); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
