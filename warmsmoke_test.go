//go:build warmsmoke

// The warmsmoke gate is the CI half of the persistence acceptance: a cold
// process compiles and snapshots, is gone (the child is a brand-new OS
// process, so "kill" is implicit), and a second process over the same
// store directory must warm-start at least 10× faster than the cold
// compile, with nonzero persisted-hit counters and no correctness drift.
// Run with: go test -tags warmsmoke -run TestWarmstartSmoke .
package incmap_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	incmap "github.com/ormkit/incmap"
	"github.com/ormkit/incmap/internal/orm"
	"github.com/ormkit/incmap/internal/workload"
)

const warmsmokeDirEnv = "INCMAP_WARMSMOKE_DIR"

// warmsmokeModel is the gate's fixture: hub-and-rim N=3, M=5, TPH — deep
// enough that the cold compile takes hundreds of milliseconds, so a 10×
// margin is meaningful rather than timer noise.
func warmsmokeModel() *incmap.Mapping {
	return workload.HubRim(workload.HubRimOptions{N: 3, M: 5, TPH: true})
}

// warmsmokeProbeOps is the evolve sequence both processes run: dropping a
// rim leaf needs no new store objects, and its neighbourhood revalidation
// consults the persisted verdicts in the child.
func warmsmokeProbeOps() []incmap.SMO {
	return []incmap.SMO{
		&incmap.DropAssociation{Name: "A0_0"},
		&incmap.DropEntity{Name: "Rim0_0"},
	}
}

type warmsmokeReport struct {
	WarmSeconds   float64 `json:"warmSeconds"`
	WarmStarts    int64   `json:"warmStarts"`
	StoreHits     int64   `json:"storeHits"`
	PersistedHits int64   `json:"persistedHits"`
	RoundtripOK   bool    `json:"roundtripOK"`
}

func TestWarmstartSmoke(t *testing.T) {
	if os.Getenv(warmsmokeDirEnv) != "" {
		t.Skip("child-only environment")
	}
	dir := t.TempDir()
	st, err := incmap.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	t0 := time.Now()
	cold, err := incmap.NewSessionCompile(context.Background(), warmsmokeModel(), incmap.WithStore(st))
	coldD := time.Since(t0)
	if err != nil {
		t.Fatal(err)
	}
	// Evolve the same probe the child will run, so the persisted SatCache
	// covers the neighbourhood the child revalidates.
	for _, op := range warmsmokeProbeOps() {
		if _, _, err := cold.Evolve(context.Background(), op); err != nil {
			t.Fatal(err)
		}
	}
	cold.Flush()
	t.Logf("cold compile+snapshot: %v", coldD)

	// The "restart": a fresh OS process running only the child test over
	// the populated store directory.
	cmd := exec.Command(os.Args[0], "-test.run", "^TestWarmstartSmokeChild$", "-test.v")
	cmd.Env = append(os.Environ(), warmsmokeDirEnv+"="+dir)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("child process failed: %v\n%s", err, out)
	}
	var report *warmsmokeReport
	for _, line := range strings.Split(string(out), "\n") {
		if i := strings.Index(line, "WARMSMOKE "); i >= 0 {
			report = new(warmsmokeReport)
			if err := json.Unmarshal([]byte(line[i+len("WARMSMOKE "):]), report); err != nil {
				t.Fatalf("bad child report %q: %v", line, err)
			}
		}
	}
	if report == nil {
		t.Fatalf("child emitted no report:\n%s", out)
	}
	t.Logf("warm open in child process: %fs (%.0fx)", report.WarmSeconds, coldD.Seconds()/report.WarmSeconds)

	if report.WarmStarts != 1 {
		t.Errorf("child did not warm-start: %+v", report)
	}
	if report.StoreHits == 0 || report.PersistedHits == 0 {
		t.Errorf("child saw no persisted artifacts: %+v", report)
	}
	if !report.RoundtripOK {
		t.Errorf("restored generation drifted: %+v", report)
	}
	if report.WarmSeconds*10 > coldD.Seconds() {
		t.Errorf("warm start %fs is not >=10x faster than cold %fs", report.WarmSeconds, coldD.Seconds())
	}
}

// TestWarmstartSmokeChild is the second process; it only runs when the
// parent re-executes the test binary with the store directory in the
// environment.
func TestWarmstartSmokeChild(t *testing.T) {
	dir := os.Getenv(warmsmokeDirEnv)
	if dir == "" {
		t.Skip("parent-only")
	}
	st, err := incmap.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	s, err := incmap.NewSessionCompile(context.Background(), warmsmokeModel(), incmap.WithStore(st))
	warmD := time.Since(t0)
	if err != nil {
		t.Fatal(err)
	}
	m, v := s.Generation()
	// Drive the restored SatCache so persisted verdicts are consulted:
	// dropping a rim leaf revalidates its neighbourhood.
	for _, op := range warmsmokeProbeOps() {
		if _, _, err := s.Evolve(context.Background(), op); err != nil {
			t.Fatal(err)
		}
	}
	var persisted int64
	if c := s.SatCache(); c != nil {
		persisted = c.Stats().PersistedHits
	}
	report := warmsmokeReport{
		WarmSeconds:   warmD.Seconds(),
		WarmStarts:    s.Stats().WarmStarts,
		StoreHits:     st.Stats().Hits,
		PersistedHits: persisted,
		RoundtripOK:   orm.Roundtrip(m, v, orm.RandomState(m, 2654435761, 3)) == nil,
	}
	data, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("WARMSMOKE %s\n", data)
}
