// Package incmap is an object-to-relational mapping system with an
// incremental mapping compiler, reproducing Bernstein, Jacob, Pérez, Rull
// and Terwilliger, "Incremental Mapping Compilation in an
// Object-to-Relational Mapping System", SIGMOD 2013.
//
// A mapping consists of three developer-provided definitions: a client
// schema (entity types with inheritance, entity sets, associations), a
// relational store schema, and a set of declarative mapping fragments
// π_α(σ_ψ(E)) = π_β(σ_χ(R)). Compiling a mapping validates that it
// roundtrips (updates saved to the database read back unchanged) and
// produces query views and update views used by the runtime.
//
// Full compilation (Compile) is expensive: validation is NP-hard and its
// exhaustive analysis is exponential in the complexity of the mapping.
// The incremental compiler (NewIncremental, Apply) instead evolves an
// already-compiled mapping under schema modification operations — AddEntity
// in the TPT/TPC/TPH styles, AddEntityPart, AddAssociationFK/JT,
// AddProperty, DropEntity, DropAssociation — validating only the
// neighbourhood of the change, typically orders of magnitude faster.
//
// A minimal session:
//
//	m := ...                                   // build or load a *incmap.Mapping
//	views, err := incmap.Compile(m)            // full compile once
//	db := incmap.Open(m, views)                // in-memory ORM runtime
//	op := incmap.AddEntityTPT("Employee", "Person", attrs, "Emp", cols)
//	m, views, err = incmap.NewIncremental().Apply(m, views, op)
package incmap

import (
	"context"
	"io"

	"github.com/ormkit/incmap/internal/compiler"
	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/containment"
	"github.com/ormkit/incmap/internal/core"
	"github.com/ormkit/incmap/internal/cqt"
	"github.com/ormkit/incmap/internal/edm"
	"github.com/ormkit/incmap/internal/esql"
	"github.com/ormkit/incmap/internal/exec"
	"github.com/ormkit/incmap/internal/fault"
	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/modef"
	"github.com/ormkit/incmap/internal/modelio"
	"github.com/ormkit/incmap/internal/obsv"
	"github.com/ormkit/incmap/internal/orm"
	"github.com/ormkit/incmap/internal/pipeline"
	"github.com/ormkit/incmap/internal/rel"
	"github.com/ormkit/incmap/internal/server"
	"github.com/ormkit/incmap/internal/sqlgen"
	"github.com/ormkit/incmap/internal/state"
	"github.com/ormkit/incmap/internal/store"
)

// Schema building blocks.
type (
	// ClientSchema is the object-oriented schema (an EDM subset).
	ClientSchema = edm.Schema
	// EntityType is a node of an inheritance hierarchy.
	EntityType = edm.EntityType
	// Attribute is a typed attribute of an entity type.
	Attribute = edm.Attribute
	// EntitySet is a persistent collection of a root type's instances.
	EntitySet = edm.EntitySet
	// Association relates two entity types.
	Association = edm.Association
	// End is one association endpoint.
	End = edm.End
	// Mult is an association-end multiplicity.
	Mult = edm.Mult

	// StoreSchema is the relational schema.
	StoreSchema = rel.Schema
	// Table is a relational table definition.
	Table = rel.Table
	// Column is a table column.
	Column = rel.Column
	// ForeignKey maps table columns to another table's key.
	ForeignKey = rel.ForeignKey

	// Mapping bundles client schema, store schema and fragments.
	Mapping = frag.Mapping
	// Fragment is one mapping equation π_α(σ_ψ(E)) = π_β(σ_χ(R)).
	Fragment = frag.Fragment
	// Views is a compiled mapping: query and update views.
	Views = frag.Views

	// Cond is a boolean condition over entities or rows.
	Cond = cond.Expr
	// Value is a typed constant.
	Value = cond.Value
	// Kind enumerates value kinds.
	Kind = cond.Kind

	// ClientState is an instance of a client schema.
	ClientState = state.ClientState
	// StoreState is an instance of a store schema.
	StoreState = state.StoreState
	// Entity is an instance of an entity type.
	Entity = state.Entity
	// AssocPair is one association instance.
	AssocPair = state.AssocPair
	// Row is a table row.
	Row = state.Row
)

// Value kinds.
const (
	KindString = cond.KindString
	KindInt    = cond.KindInt
	KindFloat  = cond.KindFloat
	KindBool   = cond.KindBool
)

// Association-end multiplicities.
const (
	One     = edm.One
	ZeroOne = edm.ZeroOne
	Many    = edm.Many
)

// NewClientSchema returns an empty client schema.
func NewClientSchema() *ClientSchema { return edm.NewSchema() }

// NewStoreSchema returns an empty store schema.
func NewStoreSchema() *StoreSchema { return rel.NewSchema() }

// Condition constructors re-exported from the condition language.
var (
	// True is the always-true condition.
	True = cond.Expr(cond.True{})
)

// IsOf builds the condition IS OF type.
func IsOf(typeName string) Cond { return cond.TypeIs{Type: typeName} }

// IsOfOnly builds the condition IS OF (ONLY type).
func IsOfOnly(typeName string) Cond { return cond.TypeIs{Type: typeName, Only: true} }

// NotNull builds attr IS NOT NULL.
func NotNull(attr string) Cond { return cond.NotNull(attr) }

// IsNull builds attr IS NULL.
func IsNull(attr string) Cond { return cond.Null{Attr: attr} }

// And conjoins conditions.
func And(xs ...Cond) Cond { return cond.NewAnd(xs...) }

// Or disjoins conditions.
func Or(xs ...Cond) Cond { return cond.NewOr(xs...) }

// ParseCond parses the Entity-SQL-like condition syntax (see package
// documentation of internal/esql).
func ParseCond(in string) (Cond, error) { return esql.ParseCond(in) }

// MustParseCond is ParseCond panicking on error.
func MustParseCond(in string) Cond { return esql.MustParseCond(in) }

// Full compilation -----------------------------------------------------------

// CompilerOptions tunes the full compiler. Parallelism sets the validation
// worker count (0 = runtime.GOMAXPROCS(0), 1 = sequential; any value
// produces identical views and errors) and SatCache attaches a shared
// decision cache.
type CompilerOptions = compiler.Options

// CompileStats reports full-compilation work, including decision-cache
// hit/miss counts and the worker count used.
type CompileStats = compiler.Stats

// SatCache memoizes satisfiability/implication/disjointness verdicts keyed
// by a canonical structural encoding of the query and the relevant schema
// facts. One cache may be shared across compilations — and between the
// full and the incremental compiler — and is safe for concurrent use.
type SatCache = cond.SatCache

// SatCacheStats is a snapshot of a cache's hit/miss/entry counters.
type SatCacheStats = cond.SatCacheStats

// NewSatCache returns an empty decision cache to share across compilations
// via CompilerOptions.SatCache and IncrementalOptions.SatCache.
func NewSatCache() *SatCache { return cond.NewSatCache() }

// Compile fully compiles and validates a mapping, generating its query and
// update views. This is the expensive baseline the incremental compiler is
// measured against.
func Compile(m *Mapping) (*Views, error) { return compiler.New().Compile(m) }

// CompileWith compiles with explicit options and reports statistics.
func CompileWith(m *Mapping, opts CompilerOptions) (*Views, CompileStats, error) {
	c := &compiler.Compiler{Opts: opts}
	v, err := c.Compile(m)
	return v, c.Stats, err
}

// CompileCtx is Compile under a context: cancellation or deadline expiry
// stops validation within one cell-span and returns an error satisfying
// errors.Is(err, ctx.Err()). The input mapping is never mutated.
func CompileCtx(ctx context.Context, m *Mapping) (*Views, error) {
	return compiler.New().CompileCtx(ctx, m)
}

// CompileWithCtx is CompileWith under a context.
func CompileWithCtx(ctx context.Context, m *Mapping, opts CompilerOptions) (*Views, CompileStats, error) {
	c := &compiler.Compiler{Opts: opts}
	v, err := c.CompileCtx(ctx, m)
	return v, c.Stats, err
}

// Fault tolerance ------------------------------------------------------------

// Budget bounds validation work. A zero Budget is unlimited. When a limit
// is hit, compilation stops with a *BudgetExceededError.
type Budget = fault.Budget

// BudgetExceededError reports which validation budget was exhausted,
// carrying the partial work statistics accumulated up to that point.
type BudgetExceededError = fault.BudgetExceededError

// PanicError wraps a panic recovered inside the compilation pipeline,
// preserving the panic value and its stack trace.
type PanicError = fault.PanicError

// ErrUnsupportedSMO is returned (wrapped) by the incremental compiler for
// operations it cannot evolve incrementally; Session.Evolve falls back to
// full compilation on it.
var ErrUnsupportedSMO = core.ErrUnsupportedSMO

// Session serializes schema evolution over one mapping generation and
// implements the fallback ladder of §1.2: incremental compilation first,
// full recompilation when the incremental path is unsupported, over budget,
// or panics. A failed Evolve leaves the previous generation installed.
type Session = pipeline.Session

// SessionOptions configures a Session's incremental and full compilers.
type SessionOptions = pipeline.Options

// SessionStats counts a Session's evolutions by outcome: incremental
// successes, full-compile fallbacks, cancellations and recovered panics.
type SessionStats = pipeline.Stats

// FullEvolver is an optional SMO capability: operations that can transform
// a mapping structurally even when the incremental compiler does not
// support them, enabling the full-compile fallback to proceed.
type FullEvolver = pipeline.FullEvolver

// NewSession wraps an already-compiled generation in a Session.
func NewSession(m *Mapping, v *Views, opts SessionOptions) *Session {
	return pipeline.NewSession(m, v, opts)
}

// NewSessionCompile full-compiles m and wraps the result in a Session.
func NewSessionCompile(ctx context.Context, m *Mapping, opts SessionOptions) (*Session, error) {
	return pipeline.NewSessionCompile(ctx, m, opts)
}

// Incremental compilation ----------------------------------------------------

// Incremental is the incremental mapping compiler (the paper's
// contribution).
type Incremental = core.Incremental

// IncrementalOptions tunes the incremental compiler.
type IncrementalOptions = core.Options

// SMO is a schema modification operation.
type SMO = core.SMO

// The concrete SMOs of §3 of the paper.
type (
	// AddEntity adds a leaf entity type (general α/P/T/f form).
	AddEntity = core.AddEntity
	// AddEntityPart adds a horizontally partitioned entity type (§3.3).
	AddEntityPart = core.AddEntityPart
	// Part is one (αi, ψi, Ti, fi) element of AddEntityPart.
	Part = core.Part
	// AddAssociationFK adds an association mapped to key/foreign-key
	// columns (§3.2).
	AddAssociationFK = core.AddAssociationFK
	// AddAssociationJT adds an association mapped to a join table.
	AddAssociationJT = core.AddAssociationJT
	// AddProperty adds an attribute to an existing type.
	AddProperty = core.AddProperty
	// DropEntity removes a leaf entity type.
	DropEntity = core.DropEntity
	// DropAssociation removes an association.
	DropAssociation = core.DropAssociation
	// RefactorAssocToInheritance turns a 1 — 0..1 association into an
	// inheritance relationship (§3.4).
	RefactorAssocToInheritance = core.RefactorAssocToInheritance
)

// NewIncremental returns an incremental compiler with default options.
func NewIncremental() *Incremental { return core.NewIncremental() }

// AddEntityTPT builds the Table-per-Type AddEntity.
func AddEntityTPT(name, parent string, attrs []Attribute, table string, colOf map[string]string) *AddEntity {
	return core.AddEntityTPT(name, parent, attrs, table, colOf)
}

// AddEntityTPC builds the Table-per-Concrete-type AddEntity.
func AddEntityTPC(name, parent string, attrs []Attribute, table string, colOf map[string]string) *AddEntity {
	return core.AddEntityTPC(name, parent, attrs, table, colOf)
}

// AddEntityTPH builds the Table-per-Hierarchy AddEntity.
func AddEntityTPH(name, parent string, attrs []Attribute, table, discCol string, discVal Value, colOf map[string]string) *AddEntity {
	return core.AddEntityTPH(name, parent, attrs, table, discCol, discVal, colOf)
}

// Style inference (MoDEF) ----------------------------------------------------

// MappingStyle identifies TPT/TPC/TPH.
type MappingStyle = modef.Style

// Mapping styles.
const (
	TPT = modef.TPT
	TPC = modef.TPC
	TPH = modef.TPH
)

// InferStyle reports the mapping style of an entity type.
func InferStyle(m *Mapping, typeName string) MappingStyle { return modef.InferStyle(m, typeName) }

// PlanAddEntity synthesises an AddEntity SMO in the style of the new
// type's neighbourhood, extending the store schema as needed.
func PlanAddEntity(m *Mapping, name, parent string, attrs []Attribute) (SMO, error) {
	return modef.PlanAddEntity(m, name, parent, attrs)
}

// PlanAddAssociation synthesises an association SMO (FK or join-table
// style depending on multiplicities).
func PlanAddAssociation(m *Mapping, name, e1, e2 string, m1, m2 Mult) (SMO, error) {
	return modef.PlanAddAssociation(m, name, e1, e2, m1, m2)
}

// DiffSchemas converts a target client schema into an SMO sequence (drops
// first, then adds).
func DiffSchemas(m *Mapping, target *ClientSchema) ([]SMO, error) { return modef.Diff(m, target) }

// Runtime ---------------------------------------------------------------------

// DB is the in-memory ORM runtime over a compiled mapping.
type DB = orm.DB

// Open creates an empty database over a compiled mapping.
func Open(m *Mapping, views *Views) *DB { return orm.Open(m, views) }

// Roundtrip verifies V ∘ Q = identity on one client state.
func Roundtrip(m *Mapping, views *Views, cs *ClientState) error {
	return orm.Roundtrip(m, views, cs)
}

// NewClientState returns an empty client state.
func NewClientState() *ClientState { return state.NewClientState() }

// Streaming executor -----------------------------------------------------------

// TableStore is the batched-scan interface the streaming executor pulls
// rows from: a segmented in-memory ring, the map-store adapter over a
// materialized StoreState, or any external source.
type (
	TableStore = exec.TableStore
	// RowIter is one open batched scan of a table.
	RowIter = exec.RowIter
	// RingStore is a segmented append-only row store; open scans see a
	// consistent prefix while appends proceed concurrently.
	RingStore = exec.RingStore
	// MapStore adapts a materialized StoreState behind TableStore.
	MapStore = exec.MapStore
	// ExecOptions tunes the executor (batch size, spill threshold, tracer).
	ExecOptions = exec.Options
	// EntityIter streams constructed entities out of a compiled query view.
	EntityIter = exec.EntityIter
	// ExecError is the typed per-operator error the executor surfaces
	// (operator name, target, wrapped cause).
	ExecError = exec.OpError
)

// NewRingStore returns an empty segmented ring store.
func NewRingStore(segCap int) *RingStore { return exec.NewRingStore(segCap) }

// RingFromState copies a materialized store into a ring store.
func RingFromState(ss *StoreState, segCap int) *RingStore { return exec.RingFromState(ss, segCap) }

// NewMapStore adapts a materialized store behind the TableStore interface.
func NewMapStore(ss *StoreState) MapStore { return exec.NewMapStore(ss) }

// QueryTypeStream opens a streaming read of one entity type's compiled
// query view; the caller pulls batches of constructed entities.
func QueryTypeStream(ctx context.Context, m *Mapping, views *Views, ts TableStore, entityType string, opts ExecOptions) (*EntityIter, error) {
	return orm.QueryTypeStream(ctx, m, views, ts, entityType, opts)
}

// EachEntity streams one entity type's query view through a callback;
// returning an error from the callback stops the stream.
func EachEntity(ctx context.Context, m *Mapping, views *Views, ts TableStore, entityType string, opts ExecOptions, fn func(*Entity) error) error {
	return orm.EachEntity(ctx, m, views, ts, entityType, opts, fn)
}

// LoadStream is Load over the streaming executor: it decodes a whole
// client state from a TableStore without materializing the store as maps.
func LoadStream(ctx context.Context, m *Mapping, views *Views, ts TableStore, opts ExecOptions) (*ClientState, error) {
	return orm.LoadStream(ctx, m, views, ts, opts)
}

// MaterializeInto streams a client state through the compiled update
// views into a fresh ring store.
func MaterializeInto(ctx context.Context, m *Mapping, views *Views, cs *ClientState, opts ExecOptions) (*RingStore, error) {
	return orm.MaterializeInto(ctx, m, views, cs, opts)
}

// Observability ---------------------------------------------------------------

// Tracer records hierarchical spans of compilation work (Compile → Validate
// → span-worker → containment-check; Apply → adapt-views → ...). A nil
// *Tracer is the null tracer: every entry point is a no-op, and the
// compilers pay a single atomic load per compilation when tracing is off.
// Install one per compilation via CompilerOptions.Tracer /
// IncrementalOptions.Tracer, or process-wide with SetDefaultTracer.
type Tracer = obsv.Tracer

// TraceSink consumes finished spans; Record must be safe for concurrent
// use.
type TraceSink = obsv.Sink

// SpanData is one finished span as delivered to a TraceSink.
type SpanData = obsv.SpanData

// RecordingSink is an in-memory TraceSink for tests and tooling.
type RecordingSink = obsv.RecordingSink

// PhaseSummary aggregates a trace's spans by name (count, total duration).
type PhaseSummary = obsv.PhaseSummary

// NewTracer returns a tracer delivering finished spans to sink.
func NewTracer(sink TraceSink) *Tracer { return obsv.New(sink) }

// NewRecordingSink returns an empty in-memory sink.
func NewRecordingSink() *RecordingSink { return obsv.NewRecordingSink() }

// SetDefaultTracer installs (or, with nil, removes) the process-wide tracer
// used by compilations not handed an explicit one.
func SetDefaultTracer(t *Tracer) { obsv.SetDefault(t) }

// WriteChromeTrace renders recorded spans as Chrome trace-event JSON
// (load in chrome://tracing or Perfetto).
func WriteChromeTrace(w io.Writer, spans []SpanData) error {
	return obsv.WriteChromeTrace(w, spans)
}

// SummarizePhases aggregates spans by name, longest total first.
func SummarizePhases(spans []SpanData) []PhaseSummary { return obsv.SummarizePhases(spans) }

// MetricsSnapshot returns the process-wide compilation metrics (counter
// name → value): compilations, validation tasks, containment checks, cache
// hits/misses. The same registry is exported through expvar under
// "incmap" once PublishMetrics has been called.
func MetricsSnapshot() map[string]int64 { return obsv.Snapshot() }

// PublishMetrics exposes the metrics registry through the expvar interface
// (idempotent).
func PublishMetrics() { obsv.PublishExpvar() }

// Containment -----------------------------------------------------------------

// ContainmentChecker decides query containment (exposed for tooling and
// experiments).
type ContainmentChecker = containment.Checker

// NewContainmentChecker builds a checker over a mapping's schemas.
func NewContainmentChecker(m *Mapping) *ContainmentChecker {
	return containment.NewChecker(m.Catalog())
}

// Views and formatting ----------------------------------------------------------

// FormatView renders a compiled (Q | τ) view as Entity-SQL-like text, in
// the shape of Figure 2 of the paper.
func FormatView(v *cqt.View) string { return cqt.FormatView(v) }

// SQL generation -------------------------------------------------------------------

// GenerateDDL renders CREATE TABLE statements for the mapping's store
// schema.
func GenerateDDL(m *Mapping) string { return sqlgen.DDL(m.Store) }

// GenerateSQL renders a compiled query view as an ANSI SQL SELECT (only
// query views have a SQL form; update views range over client data).
func GenerateSQL(m *Mapping, v *cqt.View) (string, error) {
	return sqlgen.Query(m.Catalog(), v.Q)
}

// Serialization ------------------------------------------------------------------

// EncodeMapping writes a mapping as JSON.
func EncodeMapping(w io.Writer, m *Mapping) error { return modelio.Encode(w, m) }

// DecodeMapping reads a mapping from JSON.
func DecodeMapping(r io.Reader) (*Mapping, error) { return modelio.Decode(r) }

// EncodeViews writes compiled views as JSON. Conditions are encoded
// structurally, so DecodeViews re-interns them into the process-wide
// hash-consing table (decoded conditions are pointer-equal to live ones).
func EncodeViews(w io.Writer, v *Views) error { return modelio.EncodeViews(w, v) }

// DecodeViews reads compiled views from JSON.
func DecodeViews(r io.Reader) (*Views, error) { return modelio.DecodeViews(r) }

// Persistence --------------------------------------------------------------------

// Store is a content-addressed on-disk cache of compilation artifacts:
// compiled generations keyed by a fingerprint of the mapping and compiler
// options, plus SatCache verdicts and learned lemmas. It is strictly an
// accelerator — any missing, stale or damaged record degrades to a cold
// compile, never to an error.
type Store = store.Store

// StoreStats is a snapshot of a store's hit/miss/eviction/byte counters.
type StoreStats = store.Stats

// OpenStore opens (creating if needed) a store rooted at dir.
func OpenStore(dir string) (*Store, error) { return store.Open(dir) }

// Fingerprint computes the content address of a mapping (plus optional
// extra strings covering compiler options) used to key saved generations.
func Fingerprint(m *Mapping, extras ...string) (string, error) {
	return store.Fingerprint(m, extras...)
}

// Save persists a compiled generation into st under the mapping's
// fingerprint, so a later process can warm-start from it with Load.
func Save(st *Store, m *Mapping, v *Views) error {
	fp, err := store.Fingerprint(m)
	if err != nil {
		return err
	}
	return st.SaveGeneration(fp, m, v)
}

// Load restores the compiled generation saved for m, or an error if no
// intact record with a matching fingerprint exists (callers then compile
// cold).
func Load(st *Store, m *Mapping) (*Mapping, *Views, error) {
	fp, err := store.Fingerprint(m)
	if err != nil {
		return nil, nil, err
	}
	return st.LoadGeneration(fp)
}

// WithStore returns SessionOptions wired to persist and restore through
// st: NewSessionCompile warm-starts from a saved generation when the
// fingerprint matches, and every committed generation (plus the shared
// SatCache) is snapshotted back on commit.
func WithStore(st *Store) SessionOptions { return SessionOptions{Store: st} }

// Int returns an integer Value.
func Int(i int64) Value { return cond.Int(i) }

// Str returns a string Value.
func Str(s string) Value { return cond.String(s) }

// Float returns a float Value.
func Float(f float64) Value { return cond.Float(f) }

// Bool returns a boolean Value.
func Bool(b bool) Value { return cond.Bool(b) }

// Daemon is the multi-tenant mapping-compiler server: many named models,
// each behind its own Session, sharing one SatCache and one persistent
// Store, with bounded admission queues, graceful degradation (a failed
// evolve leaves the tenant serving its last committed generation, flagged
// stale) and a clean drain/warm-restart lifecycle. See cmd/mapserved for
// the runnable binary.
type Daemon = server.Server

// DaemonOptions configures a Daemon: queue depths, compile concurrency,
// evolve deadlines, budgets, and the backing Store.
type DaemonOptions = server.Options

// DaemonTenantStatus reports one tenant's serving state: generation,
// fingerprint, staleness, and request counters.
type DaemonTenantStatus = server.TenantStatus

// NewDaemon builds a Daemon, warm-starting every tenant recorded in the
// store's manifest. Serve its Handler() over HTTP and call Drain on
// shutdown.
func NewDaemon(opts DaemonOptions) *Daemon { return server.New(opts) }

// SessionGeneration identifies one committed (or staged) generation in a
// Session's version chain: sequence number, fingerprint, and the mapping
// plus views it serves. Session.Head/Generations/GenerationAt walk the
// chain; Propose/PromotePending/DiscardPending/Rollback manage staged
// cutovers.
type SessionGeneration = pipeline.Generation

// DaemonRolloutStatus reports one versioned rollout's progress through
// the propose → canary → backfill → cutover → verify state machine:
// phase, source/target fingerprints, backfill checkpoint counters, gate
// failures and whether the rollout resumed from a crash.
type DaemonRolloutStatus = server.RolloutStatus

// DaemonReconfig is the hot-reloadable knob set a running Daemon accepts
// through Reconfigure (and mapserved re-applies on SIGHUP): queue bounds,
// evolve timeout, validation budgets, and rollout gate thresholds. All
// fields are optional; nil leaves the current value untouched.
type DaemonReconfig = server.Reconfig

// DaemonConfigStatus snapshots the Daemon's effective hot configuration,
// including the reload generation counter.
type DaemonConfigStatus = server.ConfigStatus

// DaemonRolloutConfig holds the rollout defaults and health-gate
// thresholds: canary sample count, backfill batch rows and retry ladder,
// maximum divergent rows and error-rate percentage before automatic
// rollback.
type DaemonRolloutConfig = server.RolloutConfig
