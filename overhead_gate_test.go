//go:build overheadgate

package incmap_test

// The null-tracer overhead gate, run by the tracer-overhead CI job with
// -tags overheadgate. It is excluded from ordinary test runs because it
// needs ~10s of quiet CPU to measure a ≤2% bound meaningfully.

import (
	"sort"
	"testing"
	"time"

	incmap "github.com/ormkit/incmap"
	"github.com/ormkit/incmap/internal/workload"
)

// discardSink accepts spans and drops them, so the traced arm pays span
// creation and delivery but no recording cost.
type discardSink struct{}

func (discardSink) Record(incmap.SpanData) {}

// TestNullTracerOverhead interleaves compilations of the same hub-rim
// point with tracing off (nil tracer — the default for every user who
// never installs one) and with an active tracer delivering to a discard
// sink. The fastest untraced time must not exceed the fastest traced
// time by more than 2%: tracing off can never legitimately be slower
// than tracing on, so any systematic excess is per-cell or per-check
// work leaking onto the nil path.
func TestNullTracerOverhead(t *testing.T) {
	// The CDCL prover cut the original N=2/M=5 point to ~14ms, far too
	// small for a 2% bound; the N=3/M=5 point (the paper's worst case,
	// ~400ms compiled sequentially) restores trial windows long enough
	// that scheduler noise averages out inside each sample.
	const trials = 12
	m := workload.HubRim(workload.HubRimOptions{N: 3, M: 5, TPH: true})
	tr := incmap.NewTracer(discardSink{})

	run := func(tracer *incmap.Tracer) time.Duration {
		begin := time.Now()
		if _, _, err := incmap.CompileWith(m, incmap.CompilerOptions{Tracer: tracer}); err != nil {
			t.Fatalf("compile failed: %v", err)
		}
		return time.Since(begin)
	}
	run(nil) // warm-up: page in code and build sat-cache-free state once

	// One measurement pass. Arm order alternates each trial so GC debt
	// inherited from the previous compile does not land on one side, and
	// minima are compared rather than medians: systematic extra work on
	// the nil path shows up in the fastest trial too, while the upper
	// half of the distribution is machine noise the two arms absorb
	// unevenly when they share one process (isolated-process runs show
	// the arms identical).
	measure := func() (mn, mt time.Duration) {
		var null, traced []time.Duration
		for i := 0; i < trials; i++ {
			if i%2 == 0 {
				null = append(null, run(nil))
				traced = append(traced, run(tr))
			} else {
				traced = append(traced, run(tr))
				null = append(null, run(nil))
			}
		}
		min := func(ds []time.Duration) time.Duration {
			sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
			return ds[0]
		}
		return min(null), min(traced)
	}

	// A noisy host can push even best-of-12 minima a few percent around
	// (the bound itself is below the measurement floor of a busy
	// one-core container), so a failed comparison is remeasured once
	// from scratch and only a repeated failure — a *persistent* gap,
	// which is what real nil-path work produces — fails the gate.
	for attempt := 1; ; attempt++ {
		mn, mt := measure()
		t.Logf("attempt %d: fastest compile: tracer off %v, tracer on %v (%+.2f%%)",
			attempt, mn, mt, 100*(float64(mn)-float64(mt))/float64(mt))
		if float64(mn) <= 1.02*float64(mt) {
			return
		}
		if attempt == 2 {
			t.Fatalf("null-tracer compile %v is >2%% slower than traced compile %v in both attempts", mn, mt)
		}
	}
}
