//go:build overheadgate

package incmap_test

// The null-tracer overhead gate, run by the tracer-overhead CI job with
// -tags overheadgate. It is excluded from ordinary test runs because it
// needs ~10s of quiet CPU to measure a ≤2% bound meaningfully.

import (
	"sort"
	"testing"
	"time"

	incmap "github.com/ormkit/incmap"
	"github.com/ormkit/incmap/internal/workload"
)

// discardSink accepts spans and drops them, so the traced arm pays span
// creation and delivery but no recording cost.
type discardSink struct{}

func (discardSink) Record(incmap.SpanData) {}

// TestNullTracerOverhead interleaves compilations of the same hub-rim
// point with tracing off (nil tracer — the default for every user who
// never installs one) and with an active tracer delivering to a discard
// sink. The median untraced time must not exceed the median traced time
// by more than 2%: tracing off can never legitimately be slower than
// tracing on, so any excess is per-cell or per-check work leaking onto
// the nil path.
func TestNullTracerOverhead(t *testing.T) {
	const trials = 7
	m := workload.HubRim(workload.HubRimOptions{N: 2, M: 5, TPH: true})
	tr := incmap.NewTracer(discardSink{})

	run := func(tracer *incmap.Tracer) time.Duration {
		begin := time.Now()
		if _, _, err := incmap.CompileWith(m, incmap.CompilerOptions{Tracer: tracer}); err != nil {
			t.Fatalf("compile failed: %v", err)
		}
		return time.Since(begin)
	}
	run(nil) // warm-up: page in code and build sat-cache-free state once

	var null, traced []time.Duration
	for i := 0; i < trials; i++ {
		null = append(null, run(nil))
		traced = append(traced, run(tr))
	}
	med := func(ds []time.Duration) time.Duration {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[len(ds)/2]
	}
	mn, mt := med(null), med(traced)
	t.Logf("median compile: tracer off %v, tracer on %v (%+.2f%%)",
		mn, mt, 100*(float64(mn)-float64(mt))/float64(mt))
	if float64(mn) > 1.02*float64(mt) {
		t.Fatalf("null-tracer compile %v is >2%% slower than traced compile %v", mn, mt)
	}
}
