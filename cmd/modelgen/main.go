// Command modelgen writes the synthetic models of the paper's evaluation
// as JSON files consumable by incmapc:
//
//	modelgen -model paper -out paper.json
//	modelgen -model chain -n 1002 -out chain.json
//	modelgen -model hubrim -n 3 -m 4 -tph -out hubrim.json
//	modelgen -model customer -out customer.json
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/ormkit/incmap/internal/frag"
	"github.com/ormkit/incmap/internal/modelio"
	"github.com/ormkit/incmap/internal/workload"
)

func main() {
	model := flag.String("model", "paper", "paper, chain, hubrim, customer, partitioned, gender")
	out := flag.String("out", "", "output path (default stdout)")
	n := flag.Int("n", 1002, "chain length / hub depth")
	m := flag.Int("m", 4, "hub-rim fan-out")
	tph := flag.Bool("tph", false, "map hub-rim TPH instead of TPT")
	flag.Parse()

	var mp *frag.Mapping
	switch *model {
	case "paper":
		mp = workload.PaperFull()
	case "chain":
		mp = workload.Chain(*n)
	case "hubrim":
		mp = workload.HubRim(workload.HubRimOptions{N: *n, M: *m, TPH: *tph})
	case "customer":
		mp = workload.Customer(workload.DefaultCustomerOptions())
	case "partitioned":
		mp = workload.PartitionedAgeModel()
	case "gender":
		mp = workload.GenderConstantModel()
	default:
		fmt.Fprintf(os.Stderr, "modelgen: unknown model %q\n", *model)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "modelgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := modelio.Encode(w, mp); err != nil {
		fmt.Fprintln(os.Stderr, "modelgen:", err)
		os.Exit(1)
	}
}
