// Command mapserved runs the mapping compiler as a multi-tenant daemon.
// Applications register named models over HTTP, push schema modification
// operations at them, and read the compiled view state back; the daemon
// shares one SAT-verdict cache and one persistent compile store across
// every tenant, admits work through bounded per-tenant queues, and
// degrades — never crashes — under overload, store faults and poisonous
// models.
//
// Usage:
//
//	mapserved [-addr :7171] [-store DIR] [-queue 16] [-compiles N]
//	          [-evolve-timeout 30s] [-budget-containments N] [-budget-wall 0]
//	          [-persist-retries 3] [-trace FILE]
//
// Endpoints:
//
//	GET  /healthz                     liveness (200 while the process runs)
//	GET  /readyz                      readiness (503 once draining)
//	GET  /v1/tenants                  list tenants
//	POST /v1/tenants/{name}           register a model (body: model|workload, budget)
//	GET  /v1/tenants/{name}           one tenant's status
//	GET  /v1/tenants/{name}/views     served view names + staleness flag
//	POST /v1/tenants/{name}/evolve    apply one SMO (429 when shed)
//	GET  /v1/metrics                  metrics snapshot (JSON)
//	GET  /debug/vars                  expvar (includes the incmap map)
//	GET  /debug/trace                 Chrome trace of recorded compilations
//
// SIGTERM or SIGINT starts a graceful drain: admission closes, in-flight
// evolves finish, queued ones are shed with 503, write-behind snapshots
// are flushed, and the tenant manifest plus SatCache are persisted so the
// next start warm-serves every committed generation. A second signal
// forces immediate exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/ormkit/incmap/internal/fault"
	"github.com/ormkit/incmap/internal/obsv"
	"github.com/ormkit/incmap/internal/server"
	"github.com/ormkit/incmap/internal/store"
)

func main() {
	addr := flag.String("addr", ":7171", "listen address")
	storeDir := flag.String("store", "", "persistent compile store directory (empty: in-memory only, no warm restarts)")
	queue := flag.Int("queue", server.DefaultQueueDepth, "per-tenant evolve queue depth")
	compiles := flag.Int("compiles", 0, "max concurrent compiles across tenants (0: half of GOMAXPROCS)")
	evolveTimeout := flag.Duration("evolve-timeout", server.DefaultEvolveTimeout, "per-evolve wall-time cap, queue wait included")
	budgetCont := flag.Int64("budget-containments", 0, "default per-tenant containment-check budget (0: unlimited)")
	budgetWall := flag.Duration("budget-wall", 0, "default per-tenant validation wall-time budget (0: unlimited)")
	persistRetries := flag.Int("persist-retries", 3, "snapshot persist retries before the error surfaces")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight evolves on shutdown")
	traceOut := flag.String("trace", "", "record compilations and serve/write a Chrome trace")
	flag.Parse()

	opts := server.Options{
		QueueDepth:            *queue,
		MaxConcurrentCompiles: *compiles,
		EvolveTimeout:         *evolveTimeout,
		DefaultBudget:         fault.Budget{MaxContainments: *budgetCont, MaxWallTime: *budgetWall},
		WriteBehind:           true,
		PersistRetries:        *persistRetries,
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mapserved: opening store %s: %v\n", *storeDir, err)
			os.Exit(1)
		}
		opts.Store = st
	}
	if *traceOut != "" {
		opts.Sink = obsv.NewRecordingSink()
		opts.Tracer = obsv.New(opts.Sink)
	}

	srv := server.New(opts)
	obsv.RegisterGauge(obsv.MServeQueueDepth, srv.QueueDepth)
	if n := srv.Restored(); n > 0 {
		fmt.Printf("mapserved: warm-started %d tenant(s) from %s\n", n, *storeDir)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("mapserved: listening on %s\n", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "mapserved: %v\n", err)
			os.Exit(1)
		}
	case sig := <-sigCh:
		fmt.Printf("mapserved: %s received, draining (second signal forces exit)\n", sig)
		go func() {
			<-sigCh
			fmt.Fprintln(os.Stderr, "mapserved: forced exit")
			os.Exit(1)
		}()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "mapserved: drain: %v\n", err)
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "mapserved: shutdown: %v\n", err)
		}
		if *traceOut != "" {
			writeTrace(*traceOut, opts.Sink)
		}
		fmt.Println("mapserved: drained")
	}
}

func writeTrace(path string, sink *obsv.RecordingSink) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mapserved: trace: %v\n", err)
		return
	}
	defer f.Close()
	if err := obsv.WriteChromeTrace(f, sink.Spans()); err != nil {
		fmt.Fprintf(os.Stderr, "mapserved: trace: %v\n", err)
	}
}
