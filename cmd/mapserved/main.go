// Command mapserved runs the mapping compiler as a multi-tenant daemon.
// Applications register named models over HTTP, push schema modification
// operations at them, and read the compiled view state back; the daemon
// shares one SAT-verdict cache and one persistent compile store across
// every tenant, admits work through bounded per-tenant queues, and
// degrades — never crashes — under overload, store faults and poisonous
// models.
//
// Usage:
//
//	mapserved [-addr :7171] [-store DIR] [-queue 16] [-compiles N]
//	          [-evolve-timeout 30s] [-budget-containments N] [-budget-wall 0]
//	          [-persist-retries 3] [-trace FILE] [-config FILE]
//	          [-auth FILE] [-intern-sweep 10m]
//
// Endpoints:
//
//	GET  /healthz                     liveness (200 while the process runs)
//	GET  /readyz                      readiness (503 once draining)
//	GET  /v1/tenants                  list tenants
//	POST /v1/tenants/{name}           register a model (body: model|workload, budget)
//	GET  /v1/tenants/{name}           one tenant's status
//	GET  /v1/tenants/{name}/views     served view names + staleness flag
//	POST /v1/tenants/{name}/evolve    apply one SMO (429 when shed)
//	POST /v1/tenants/{name}/rollout   start a versioned rollout (202)
//	GET  /v1/tenants/{name}/rollout   rollout status
//	POST /v1/tenants/{name}/data      write synthetic rows ({"version":"prev"} routes
//	                                  through the cross-version write views)
//	GET  /v1/tenants/{name}/data      row summary (?version=prev for the old view)
//	GET  /v1/config                   hot-config snapshot (reload generation included)
//	GET  /v1/metrics                  metrics snapshot (JSON)
//	GET  /debug/vars                  expvar (includes the incmap map)
//	GET  /debug/trace                 Chrome trace of recorded compilations
//
// -config names a JSON file of hot-reloadable knobs (queue bounds, default
// budgets, evolve timeout, rollout gate thresholds — the fields of
// server.Reconfig, all optional). It is applied at startup and re-applied
// on SIGHUP: the swap is atomic and drops no in-flight work — queued
// evolves finish under the bounds they were admitted with, active rollouts
// pick up new gate thresholds at their next gate evaluation. A malformed
// or invalid file leaves the running configuration untouched.
//
// -auth names a JSON file mapping tenant names to static bearer tokens;
// mutating endpoints for listed tenants then require
// "Authorization: Bearer <token>" (401 missing/malformed, 403 wrong —
// both distinct from 429 overload in the metrics). Reads are never gated.
//
// -intern-sweep ages the shared condition intern table on that period:
// composites no constructor touched for two consecutive sweeps are
// reclaimed (the cond.intern.aged counter), so one departed tenant's
// working set does not squat below the capacity cap forever.
//
// SIGTERM or SIGINT starts a graceful drain: admission closes, in-flight
// evolves finish, queued ones are shed with 503, write-behind snapshots
// are flushed, active rollouts suspend at their next batch boundary (their
// checkpoints resume on restart), and the tenant manifest plus SatCache
// are persisted so the next start warm-serves every committed generation.
// A second signal forces immediate exit.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/ormkit/incmap/internal/cond"
	"github.com/ormkit/incmap/internal/fault"
	"github.com/ormkit/incmap/internal/obsv"
	"github.com/ormkit/incmap/internal/server"
	"github.com/ormkit/incmap/internal/store"
)

func main() {
	addr := flag.String("addr", ":7171", "listen address")
	storeDir := flag.String("store", "", "persistent compile store directory (empty: in-memory only, no warm restarts)")
	queue := flag.Int("queue", server.DefaultQueueDepth, "per-tenant evolve queue depth")
	compiles := flag.Int("compiles", 0, "max concurrent compiles across tenants (0: half of GOMAXPROCS)")
	evolveTimeout := flag.Duration("evolve-timeout", server.DefaultEvolveTimeout, "per-evolve wall-time cap, queue wait included")
	budgetCont := flag.Int64("budget-containments", 0, "default per-tenant containment-check budget (0: unlimited)")
	budgetWall := flag.Duration("budget-wall", 0, "default per-tenant validation wall-time budget (0: unlimited)")
	persistRetries := flag.Int("persist-retries", 3, "snapshot persist retries before the error surfaces")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight evolves on shutdown")
	traceOut := flag.String("trace", "", "record compilations and serve/write a Chrome trace")
	configFile := flag.String("config", "", "JSON file of hot-reloadable knobs, applied at startup and on SIGHUP")
	authFile := flag.String("auth", "", "JSON file mapping tenant names to bearer tokens for mutating endpoints")
	internSweep := flag.Duration("intern-sweep", 0, "age the shared condition intern table on this period (0: never)")
	flag.Parse()

	opts := server.Options{
		QueueDepth:            *queue,
		MaxConcurrentCompiles: *compiles,
		EvolveTimeout:         *evolveTimeout,
		DefaultBudget:         fault.Budget{MaxContainments: *budgetCont, MaxWallTime: *budgetWall},
		WriteBehind:           true,
		PersistRetries:        *persistRetries,
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mapserved: opening store %s: %v\n", *storeDir, err)
			os.Exit(1)
		}
		opts.Store = st
	}
	if *traceOut != "" {
		opts.Sink = obsv.NewRecordingSink()
		opts.Tracer = obsv.New(opts.Sink)
	}
	if *authFile != "" {
		auth, err := loadAuth(*authFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mapserved: auth file %s: %v\n", *authFile, err)
			os.Exit(1)
		}
		opts.Auth = auth
		fmt.Printf("mapserved: bearer tokens required for %d tenant(s)\n", len(auth))
	}

	srv := server.New(opts)
	if *configFile != "" {
		// The startup application is strict — a daemon must not boot under a
		// config it cannot parse; SIGHUP reloads below are forgiving.
		if err := applyConfigFile(srv, *configFile); err != nil {
			fmt.Fprintf(os.Stderr, "mapserved: config %s: %v\n", *configFile, err)
			os.Exit(1)
		}
	}
	obsv.RegisterGauge(obsv.MServeQueueDepth, srv.QueueDepth)
	if n := srv.Restored(); n > 0 {
		fmt.Printf("mapserved: warm-started %d tenant(s) from %s\n", n, *storeDir)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("mapserved: listening on %s\n", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	// SIGHUP re-applies the config file: an atomic hot swap, no in-flight
	// work dropped. Without -config the signal is acknowledged and ignored.
	hupCh := make(chan os.Signal, 1)
	signal.Notify(hupCh, syscall.SIGHUP)
	go func() {
		for range hupCh {
			if *configFile == "" {
				fmt.Println("mapserved: SIGHUP received but no -config file; ignoring")
				continue
			}
			if err := applyConfigFile(srv, *configFile); err != nil {
				fmt.Fprintf(os.Stderr, "mapserved: SIGHUP reload: %v (keeping current config)\n", err)
				continue
			}
			cs := srv.ConfigStatus()
			fmt.Printf("mapserved: SIGHUP reload #%d applied (queue=%d evolveTimeout=%dms canary=%d batchRows=%d errRate=%d%%)\n",
				cs.Reloads, cs.QueueDepth, cs.EvolveTimeoutMs,
				cs.Rollout.CanarySamples, cs.Rollout.BatchRows, cs.Rollout.MaxErrorRatePct)
		}
	}()

	if *internSweep > 0 {
		go func() {
			tick := time.NewTicker(*internSweep)
			defer tick.Stop()
			for range tick.C {
				if aged := cond.AgeIntern(); aged > 0 {
					fmt.Printf("mapserved: intern sweep reclaimed %d idle composites (%d live)\n",
						aged, cond.InternStats())
				}
			}
		}()
	}

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "mapserved: %v\n", err)
			os.Exit(1)
		}
	case sig := <-sigCh:
		fmt.Printf("mapserved: %s received, draining (second signal forces exit)\n", sig)
		go func() {
			<-sigCh
			fmt.Fprintln(os.Stderr, "mapserved: forced exit")
			os.Exit(1)
		}()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "mapserved: drain: %v\n", err)
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "mapserved: shutdown: %v\n", err)
		}
		if *traceOut != "" {
			writeTrace(*traceOut, opts.Sink)
		}
		fmt.Println("mapserved: drained")
	}
}

// applyConfigFile reads a server.Reconfig JSON file and applies it. Unknown
// fields are rejected so a typoed knob fails loudly instead of silently
// keeping its old value.
func applyConfigFile(srv *server.Server, path string) error {
	payload, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rc server.Reconfig
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rc); err != nil {
		return fmt.Errorf("parsing: %w", err)
	}
	_, err = srv.Reconfigure(rc)
	return err
}

// loadAuth reads the tenant -> bearer-token map.
func loadAuth(path string) (map[string]string, error) {
	payload, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var auth map[string]string
	if err := json.Unmarshal(payload, &auth); err != nil {
		return nil, fmt.Errorf("parsing: %w", err)
	}
	for tenant, token := range auth {
		if token == "" {
			return nil, fmt.Errorf("tenant %q has an empty token", tenant)
		}
	}
	return auth, nil
}

func writeTrace(path string, sink *obsv.RecordingSink) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mapserved: trace: %v\n", err)
		return
	}
	defer f.Close()
	if err := obsv.WriteChromeTrace(f, sink.Spans()); err != nil {
		fmt.Fprintf(os.Stderr, "mapserved: trace: %v\n", err)
	}
}
