// Command incmapc is the mapping compiler CLI: it loads a mapping (client
// schema, store schema, fragments) from JSON, fully compiles and validates
// it, applies incremental schema modification operations, and prints the
// generated query and update views in Entity-SQL-like notation.
//
// Usage:
//
//	incmapc -model model.json [-print-views] [-print-sql] [-ddl] \
//	        [-verify N] [-out evolved.json] \
//	        [-add-entity Name:Parent[:attr=kind,...]] [-drop-entity Name] \
//	        [-add-assoc Name:E1:E2] [-load DIR] [-save DIR]
//
// With no SMO flags, incmapc performs a full compilation and reports its
// statistics. With SMO flags, it first compiles the input model, then
// applies each operation incrementally (inferring the mapping style from
// the neighbourhood, as the MoDEF front end does in the paper), reporting
// per-operation timings.
//
// -load DIR warm-starts from a persistent compile cache: if DIR holds an
// intact generation whose fingerprint matches the input model, the full
// compilation is skipped entirely. -save DIR persists the final generation
// (after all SMOs) so a later run can warm-start. The same directory may
// be passed to both.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	incmap "github.com/ormkit/incmap"
	"github.com/ormkit/incmap/internal/modelio"
	"github.com/ormkit/incmap/internal/orm"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	model := flag.String("model", "", "path to the mapping JSON (required)")
	printViews := flag.Bool("print-views", false, "print generated query and update views")
	printSQL := flag.Bool("print-sql", false, "print ANSI SQL for the query views")
	printDDL := flag.Bool("ddl", false, "print CREATE TABLE statements for the store schema")
	out := flag.String("out", "", "write the (evolved) mapping JSON to this path")
	verify := flag.Int("verify", 0, "roundtrip N random client states through the compiled views")
	loadDir := flag.String("load", "", "warm-start from the persistent compile cache in this directory")
	saveDir := flag.String("save", "", "persist the final compiled generation into this directory")
	var addEntities, dropEntities, addAssocs multiFlag
	flag.Var(&addEntities, "add-entity", "add an entity type: Name:Parent[:attr=kind,...] (repeatable)")
	flag.Var(&dropEntities, "drop-entity", "drop a leaf entity type (repeatable)")
	flag.Var(&addAssocs, "add-assoc", "add an association: Name:E1:E2 (E2 side 0..1; repeatable)")
	flag.Parse()

	if *model == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*model)
	fatal(err)
	m, err := modelio.Decode(f)
	f.Close()
	fatal(err)

	var views *incmap.Views
	if *loadDir != "" {
		st, err := incmap.OpenStore(*loadDir)
		fatal(err)
		t0 := time.Now()
		if lm, lv, err := incmap.Load(st, m); err == nil {
			m, views = lm, lv
			fmt.Printf("warm start: loaded compiled generation from %s in %v\n", *loadDir, time.Since(t0))
		} else {
			fmt.Printf("cold start: %v\n", err)
		}
	}
	if views == nil {
		start := time.Now()
		var stats incmap.CompileStats
		var err error
		views, stats, err = incmap.CompileWith(m, incmap.CompilerOptions{})
		fatal(err)
		fmt.Printf("full compilation: %v (cells=%d, containments=%d)\n",
			time.Since(start), stats.CellsVisited, stats.Containments)
	}

	ic := incmap.NewIncremental()
	for _, spec := range addEntities {
		op, name, err := parseAddEntity(m, spec)
		fatal(err)
		t0 := time.Now()
		m, views, err = ic.Apply(m, views, op)
		fatal(err)
		fmt.Printf("add entity %s: %v\n", name, time.Since(t0))
	}
	for _, spec := range addAssocs {
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			fatal(fmt.Errorf("bad -add-assoc %q, want Name:E1:E2", spec))
		}
		op, err := incmap.PlanAddAssociation(m, parts[0], parts[1], parts[2], incmap.Many, incmap.ZeroOne)
		fatal(err)
		t0 := time.Now()
		m, views, err = ic.Apply(m, views, op)
		fatal(err)
		fmt.Printf("add association %s: %v\n", parts[0], time.Since(t0))
	}
	for _, name := range dropEntities {
		t0 := time.Now()
		var err error
		m, views, err = ic.Apply(m, views, &incmap.DropEntity{Name: name})
		fatal(err)
		fmt.Printf("drop entity %s: %v\n", name, time.Since(t0))
	}

	if *verify > 0 {
		for i := 0; i < *verify; i++ {
			cs := orm.RandomState(m, uint32(i+1)*2654435761, 3)
			if err := incmap.Roundtrip(m, views, cs); err != nil {
				fatal(fmt.Errorf("roundtrip %d failed: %w", i, err))
			}
		}
		fmt.Printf("verified: %d random client states roundtrip (V ∘ Q = identity)\n", *verify)
	}
	if *printDDL {
		fmt.Println(incmap.GenerateDDL(m))
	}
	if *printViews {
		printAllViews(views)
	}
	if *printSQL {
		var types []string
		for ty := range views.Query {
			types = append(types, ty)
		}
		sort.Strings(types)
		for _, ty := range types {
			sql, err := incmap.GenerateSQL(m, views.Query[ty])
			fatal(err)
			fmt.Printf("\n-- SQL for query view %s --\n%s\n", ty, sql)
		}
	}
	if *saveDir != "" {
		st, err := incmap.OpenStore(*saveDir)
		fatal(err)
		fatal(incmap.Save(st, m, views))
		fmt.Printf("saved compiled generation to %s (%d bytes)\n", *saveDir, st.Stats().BytesWritten)
	}
	if *out != "" {
		w, err := os.Create(*out)
		fatal(err)
		fatal(incmap.EncodeMapping(w, m))
		fatal(w.Close())
		fmt.Printf("wrote %s\n", *out)
	}
}

func parseAddEntity(m *incmap.Mapping, spec string) (incmap.SMO, string, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return nil, "", fmt.Errorf("bad -add-entity %q, want Name:Parent[:attr=kind,...]", spec)
	}
	name, parent := parts[0], parts[1]
	var attrs []incmap.Attribute
	if len(parts) == 3 && parts[2] != "" {
		for _, a := range strings.Split(parts[2], ",") {
			kv := strings.SplitN(a, "=", 2)
			kind := incmap.KindString
			if len(kv) == 2 {
				switch kv[1] {
				case "int":
					kind = incmap.KindInt
				case "float":
					kind = incmap.KindFloat
				case "bool":
					kind = incmap.KindBool
				case "string":
					kind = incmap.KindString
				default:
					return nil, "", fmt.Errorf("unknown kind %q", kv[1])
				}
			}
			attrs = append(attrs, incmap.Attribute{Name: kv[0], Type: kind, Nullable: true})
		}
	}
	op, err := incmap.PlanAddEntity(m, name, parent, attrs)
	return op, name, err
}

func printAllViews(views *incmap.Views) {
	var types []string
	for ty := range views.Query {
		types = append(types, ty)
	}
	sort.Strings(types)
	for _, ty := range types {
		fmt.Printf("\n-- query view for entity type %s --\n%s\n", ty, incmap.FormatView(views.Query[ty]))
	}
	var assocs []string
	for a := range views.Assoc {
		assocs = append(assocs, a)
	}
	sort.Strings(assocs)
	for _, a := range assocs {
		fmt.Printf("\n-- query view for association %s --\n%s\n", a, incmap.FormatView(views.Assoc[a]))
	}
	var tables []string
	for t := range views.Update {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, t := range tables {
		fmt.Printf("\n-- update view for table %s --\n%s\n", t, incmap.FormatView(views.Update[t]))
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "incmapc:", err)
		os.Exit(1)
	}
}
