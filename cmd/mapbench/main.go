// Command mapbench regenerates the evaluation of Bernstein et al. (SIGMOD
// 2013): the Figure 4 hub-and-rim compilation grid, the Figure 9 SMO suite
// on the 1002-entity chain model, the Figure 10 SMO suite on the synthetic
// customer model, and the ablation studies.
//
// Usage:
//
//	mapbench -exp fig4 [-maxn 4 -maxm 8 -budget 10s]
//	mapbench -exp fig9 [-chain 1002]
//	mapbench -exp fig10 [-types 230 -hier 18 -largest 95]
//	mapbench -exp warmstart [-store DIR]
//	mapbench -exp ablations
//	mapbench -exp stream [-chain 1002 -stream-rows 1000000 -stream-batch 0]
//	mapbench -exp all
//
// With -json, machine-readable results are also written next to the
// terminal tables: BENCH_fig4.json, BENCH_fig9.json, BENCH_fig10.json and
// BENCH_warmstart.json (per-SMO wall time, containment counts and
// allocation counts; cold vs warm open and evolve for warmstart).
//
// The warmstart experiment measures the persistent compile cache: a cold
// session open (full compile + snapshot) versus a warm open restoring the
// generation and SatCache from disk, across Figure 4 hub-and-rim points.
// It finishes by re-executing mapbench as a child process over the shared
// store directory, reporting the true cross-process warm-start numbers.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/ormkit/incmap/internal/experiments"
	"github.com/ormkit/incmap/internal/obsv"
	"github.com/ormkit/incmap/internal/workload"
)

// traceSink collects the spans of every compilation when -trace is set;
// allSpans accumulates the drained spans of each experiment so the final
// Chrome trace covers the whole run on one timeline.
var (
	traceSink *obsv.RecordingSink
	allSpans  []obsv.SpanData
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig4, fig9, fig10, warmstart, ablations, views, fallback, serve-soak, rollout-soak, stream, all")
	maxN := flag.Int("maxn", 4, "fig4: maximum hierarchy depth N")
	maxM := flag.Int("maxm", 8, "fig4: maximum fan-out M")
	budget := flag.Duration("budget", 10*time.Second, "fig4: per-point budget before a depth's curve is cut off")
	chain := flag.Int("chain", 1002, "fig9: chain length (the paper uses 1002)")
	types := flag.Int("types", 230, "fig10: total entity types")
	hier := flag.Int("hier", 18, "fig10: hierarchies")
	largest := flag.Int("largest", 95, "fig10: size of the largest (TPH) hierarchy")
	storeDir := flag.String("store", "", "warmstart: persistent store directory (default: a fresh temp dir)")
	jsonOut := flag.Bool("json", false, "also write machine-readable results to BENCH_fig{4,9,10}.json / BENCH_warmstart.json")
	tenants := flag.Int("tenants", 4, "serve-soak: concurrent tenants")
	soakEvolves := flag.Int("soak-evolves", 12, "serve-soak: evolves per tenant")
	soakFaults := flag.Bool("soak-faults", true, "serve-soak: run under the deterministic fault storm")
	streamRows := flag.Int("stream-rows", 1_000_000, "stream: target row count pushed through the views")
	streamBatch := flag.Int("stream-batch", 0, "stream: executor batch size (0 = executor default)")
	streamEvolves := flag.Int("stream-evolves", 8, "stream: concurrent SMOs through pipeline.Session (-1 disables)")
	traceOut := flag.String("trace", "", "record every compilation and write a Chrome trace_event JSON file (open in chrome://tracing or Perfetto)")
	flag.Parse()

	// Child mode: -exp warmstart re-executes this binary to measure a true
	// second-process warm start; the child prints one JSON object and exits.
	if spec := os.Getenv("MAPBENCH_WARMSTART_CHILD"); spec != "" {
		runWarmstartChild(spec)
		return
	}
	// Child mode: -exp rollout-soak re-executes this binary as the process
	// the kill/resume leg SIGKILLs mid-backfill.
	if dir := os.Getenv("MAPBENCH_ROLLOUT_CHILD"); dir != "" {
		if err := experiments.RolloutChild(dir); err != nil {
			fmt.Fprintln(os.Stderr, "mapbench: rollout child:", err)
			os.Exit(1)
		}
		return
	}

	if *traceOut != "" {
		traceSink = obsv.NewRecordingSink()
		obsv.SetDefault(obsv.New(traceSink))
	}

	switch *exp {
	case "fig4":
		runFig4(*maxN, *maxM, *budget, *jsonOut)
	case "fig9":
		runFig9(*chain, *jsonOut)
	case "fig10":
		runFig10(*types, *hier, *largest, *jsonOut)
	case "ablations":
		runAblations()
	case "views":
		runViewComparison(*chain)
	case "fallback":
		runFallback(*chain, *jsonOut)
	case "warmstart":
		runWarmstart(*storeDir, *jsonOut)
	case "serve-soak":
		runServeSoak(*tenants, *soakEvolves, *soakFaults, *jsonOut)
	case "rollout-soak":
		runRolloutSoak(*tenants, *jsonOut)
	case "stream":
		runStream(*chain, *streamRows, *streamBatch, *streamEvolves, *jsonOut)
	case "all":
		runFig4(*maxN, *maxM, *budget, *jsonOut)
		runFig9(*chain, *jsonOut)
		runFig10(*types, *hier, *largest, *jsonOut)
		runAblations()
		runViewComparison(200)
		runFallback(*chain, *jsonOut)
		runWarmstart(*storeDir, *jsonOut)
		runServeSoak(*tenants, *soakEvolves, *soakFaults, *jsonOut)
		runRolloutSoak(*tenants, *jsonOut)
		runStream(*chain, *streamRows, *streamBatch, *streamEvolves, *jsonOut)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	if *traceOut != "" {
		drainPhases() // pick up spans of experiments that did not drain
		writeTrace(*traceOut)
	}
}

// drainPhases empties the trace sink into the run-wide span list and folds
// the drained spans — one experiment's worth — into a per-phase breakdown.
// Returns nil when tracing is off.
func drainPhases() []obsv.PhaseSummary {
	if traceSink == nil {
		return nil
	}
	spans := traceSink.Drain()
	allSpans = append(allSpans, spans...)
	if len(spans) == 0 {
		return nil
	}
	return obsv.SummarizePhases(spans)
}

// printPhases renders one experiment's per-phase breakdown table.
func printPhases(phases []obsv.PhaseSummary) {
	if len(phases) == 0 {
		return
	}
	fmt.Println("--- per-phase breakdown (span name, count, total seconds) ---")
	for _, p := range phases {
		fmt.Printf("%-22s %8d %14.6f\n", p.Name, p.Count, p.Seconds)
	}
	fmt.Println()
}

func writeTrace(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mapbench:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := obsv.WriteChromeTrace(f, allSpans); err != nil {
		fmt.Fprintln(os.Stderr, "mapbench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d spans)\n", path, len(allSpans))
}

// fig4JSON is the machine-readable form of one Figure 4 grid point.
type fig4JSON struct {
	N          int     `json:"n"`
	M          int     `json:"m"`
	TPHSeconds float64 `json:"tphSeconds"`
	TPHError   string  `json:"tphError,omitempty"`
	TPTSeconds float64 `json:"tptSeconds"`
	TPTError   string  `json:"tptError,omitempty"`
}

// fig4FrontierJSON is one frontier row: the largest fan-out M completing
// under the point budget at depth N.
type fig4FrontierJSON struct {
	N          int     `json:"n"`
	MaxM       int     `json:"maxM"`
	TPHSeconds float64 `json:"tphSeconds"`
}

// fig4File is the envelope written to BENCH_fig4.json.
type fig4File struct {
	GoMaxProcs int                 `json:"goMaxProcs"`
	NumCPU     int                 `json:"numCPU"`
	MaxN       int                 `json:"maxN"`
	MaxM       int                 `json:"maxM"`
	BudgetSecs float64             `json:"pointBudgetSeconds"`
	Rows       []fig4JSON          `json:"rows"`
	Frontier   []fig4FrontierJSON  `json:"frontier"`
	Phases     []obsv.PhaseSummary `json:"phases,omitempty"`
}

func runFig4(maxN, maxM int, budget time.Duration, jsonOut bool) {
	fmt.Println("=== Figure 4: full compilation time of the hub-and-rim model ===")
	fmt.Println("(TPH is exponential in N+N*M; TPT stays flat — §1.1 of the paper)")
	fmt.Printf("%-4s %-4s %14s %14s\n", "N", "M", "TPH (s)", "TPT (s)")
	rows := experiments.Fig4(experiments.Fig4Options{MaxN: maxN, MaxM: maxM, PointBudget: budget})
	for _, r := range rows {
		fmt.Printf("%-4d %-4d %14.6f %14.6f\n", r.N, r.M, r.TPH.Seconds(), r.TPT.Seconds())
	}
	fmt.Println()
	frontier := experiments.Fig4Frontier(rows, budget)
	fmt.Println("--- frontier: largest M under the point budget, per N ---")
	for _, f := range frontier {
		fmt.Printf("N=%-3d maxM=%-3d TPH %12.6fs\n", f.N, f.MaxM, f.TPH.Seconds())
	}
	fmt.Println()
	phases := drainPhases()
	printPhases(phases)
	if !jsonOut {
		return
	}
	out := fig4File{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		MaxN:       maxN,
		MaxM:       maxM,
		BudgetSecs: budget.Seconds(),
		Phases:     phases,
	}
	for _, f := range frontier {
		out.Frontier = append(out.Frontier, fig4FrontierJSON{N: f.N, MaxM: f.MaxM, TPHSeconds: f.TPH.Seconds()})
	}
	for _, r := range rows {
		j := fig4JSON{N: r.N, M: r.M, TPHSeconds: r.TPH.Seconds(), TPTSeconds: r.TPT.Seconds()}
		if r.TPHErr != nil {
			j.TPHError = r.TPHErr.Error()
		}
		if r.TPTErr != nil {
			j.TPTError = r.TPTErr.Error()
		}
		out.Rows = append(out.Rows, j)
	}
	writeJSONFile("BENCH_fig4.json", out)
}

// smoJSON is the machine-readable form of one SMO suite row. The
// degradation counters record how the row completed: fallbacks taken by
// the pipeline ladder, compilations stopped by cancellation or deadline,
// and worker panics recovered into errors.
type smoJSON struct {
	Name            string  `json:"name"`
	Seconds         float64 `json:"seconds"`
	Containments    int64   `json:"containments"`
	Allocs          uint64  `json:"allocs"`
	Error           string  `json:"error,omitempty"`
	Note            string  `json:"note,omitempty"`
	Fallbacks       int64   `json:"fallbacks,omitempty"`
	Cancelled       int64   `json:"cancelled,omitempty"`
	PanicsRecovered int64   `json:"panicsRecovered,omitempty"`
}

func toSMOJSON(r experiments.Result) smoJSON {
	j := smoJSON{
		Name:            r.Name,
		Seconds:         r.D.Seconds(),
		Containments:    r.Containments,
		Allocs:          r.Allocs,
		Note:            r.Note,
		Fallbacks:       r.Fallbacks,
		Cancelled:       r.Cancelled,
		PanicsRecovered: r.PanicsRecovered,
	}
	if r.Err != nil {
		j.Error = r.Err.Error()
	}
	return j
}

// suiteFile is the envelope written to BENCH_fig9.json / BENCH_fig10.json.
type suiteFile struct {
	GoMaxProcs int `json:"goMaxProcs"`
	NumCPU     int `json:"numCPU"`
	// Model parameters: Chain for fig9; Types/Hierarchies/LargestTPH for fig10.
	Chain            int                 `json:"chain,omitempty"`
	Types            int                 `json:"types,omitempty"`
	Hierarchies      int                 `json:"hierarchies,omitempty"`
	LargestTPH       int                 `json:"largestTPH,omitempty"`
	FullSeconds      float64             `json:"fullCompileSeconds"`
	FullContainments int64               `json:"fullCompileContainments"`
	FullAllocs       uint64              `json:"fullCompileAllocs"`
	Rows             []smoJSON           `json:"rows"`
	Phases           []obsv.PhaseSummary `json:"phases,omitempty"`
}

func writeSuiteJSON(path string, out suiteFile, full experiments.Result, suite []experiments.Result) {
	out.GoMaxProcs = runtime.GOMAXPROCS(0)
	out.NumCPU = runtime.NumCPU()
	out.FullSeconds = full.D.Seconds()
	out.FullContainments = full.Containments
	out.FullAllocs = full.Allocs
	for _, r := range suite {
		out.Rows = append(out.Rows, toSMOJSON(r))
	}
	writeJSONFile(path, out)
}

func writeJSONFile(path string, out any) {
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mapbench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "mapbench:", err)
		os.Exit(1)
	}
	fmt.Println("wrote " + path)
	fmt.Println()
}

func runFig9(chain int, jsonOut bool) {
	fmt.Printf("=== Figure 9: SMO suite on the chain model (%d entity types) ===\n", chain)
	full, suite := experiments.Fig9(chain)
	fmt.Println(full)
	printSuite(full, suite)
	phases := drainPhases()
	printPhases(phases)
	if jsonOut {
		writeSuiteJSON("BENCH_fig9.json", suiteFile{Chain: chain, Phases: phases}, full, suite)
	}
}

func runFig10(types, hier, largest int, jsonOut bool) {
	fmt.Printf("=== Figure 10: SMO suite on the customer model (%d types, %d hierarchies, largest %d) ===\n",
		types, hier, largest)
	opt := workload.DefaultCustomerOptions()
	opt.Types, opt.Hierarchies, opt.LargestTPH = types, hier, largest
	full, suite := experiments.Fig10(opt)
	fmt.Println(full)
	printSuite(full, suite)
	phases := drainPhases()
	printPhases(phases)
	if jsonOut {
		writeSuiteJSON("BENCH_fig10.json", suiteFile{Types: types, Hierarchies: hier, LargestTPH: largest, Phases: phases}, full, suite)
	}
}

func printSuite(full experiments.Result, suite []experiments.Result) {
	for _, r := range suite {
		speedup := ""
		if r.Err == nil && r.D > 0 {
			speedup = fmt.Sprintf("%8.0fx faster", full.D.Seconds()/r.D.Seconds())
		}
		fmt.Printf("%s %s\n", r, speedup)
	}
	fmt.Println()
}

// fallbackFile is the envelope written to BENCH_fallback.json.
type fallbackFile struct {
	GoMaxProcs int                 `json:"goMaxProcs"`
	NumCPU     int                 `json:"numCPU"`
	Chain      int                 `json:"chain"`
	Rows       []smoJSON           `json:"rows"`
	Phases     []obsv.PhaseSummary `json:"phases,omitempty"`
}

func runFallback(chain int, jsonOut bool) {
	fmt.Printf("=== Fallback ladder overhead: incremental vs forced full-compile fallback (chain %d) ===\n", chain)
	rows, err := experiments.FallbackOverhead(chain)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mapbench:", err)
		os.Exit(1)
	}
	for _, r := range rows {
		fmt.Println(r)
	}
	fmt.Println()
	phases := drainPhases()
	printPhases(phases)
	if !jsonOut {
		return
	}
	out := fallbackFile{GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(), Chain: chain, Phases: phases}
	for _, r := range rows {
		out.Rows = append(out.Rows, toSMOJSON(r))
	}
	writeJSONFile("BENCH_fallback.json", out)
}

func runViewComparison(chain int) {
	fmt.Printf("=== §6 future-work study: incremental vs full views (chain %d) ===\n", chain)
	rows, err := experiments.CompareViews(chain)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mapbench:", err)
		os.Exit(1)
	}
	for _, r := range rows {
		fmt.Println(r)
	}
	fmt.Println()
	printPhases(drainPhases())
}

func runAblations() {
	fmt.Println("=== Ablation: cell-enumeration pruning (hub-and-rim N=2, M=3) ===")
	for _, r := range experiments.AblationCellPruning(2, 3) {
		fmt.Println(r)
	}
	fmt.Println()
	fmt.Println("=== Ablation: view simplifier before containment (chain 100) ===")
	for _, r := range experiments.AblationSimplifier(100) {
		fmt.Println(r)
	}
	fmt.Println()
	fmt.Println("=== Ablation: neighbourhood validation vs all constraints (chain 400) ===")
	for _, r := range experiments.AblationNeighbourhood(400) {
		fmt.Println(r)
	}
	fmt.Println()
}

// warmstartJSON is one cold-vs-warm row of BENCH_warmstart.json.
type warmstartJSON struct {
	N                 int     `json:"n"`
	M                 int     `json:"m"`
	TPH               bool    `json:"tph"`
	ColdSeconds       float64 `json:"coldSeconds"`
	WarmSeconds       float64 `json:"warmSeconds"`
	ColdEvolveSeconds float64 `json:"coldEvolveSeconds"`
	WarmEvolveSeconds float64 `json:"warmEvolveSeconds"`
	Speedup           float64 `json:"speedup"`
	StoreHits         int64   `json:"storeHits"`
	PersistedHits     int64   `json:"persistedHits"`
	StoreBytes        int64   `json:"storeBytes"`
	Error             string  `json:"error,omitempty"`
}

// warmstartFile is the envelope written to BENCH_warmstart.json.
type warmstartFile struct {
	GoMaxProcs    int                               `json:"goMaxProcs"`
	NumCPU        int                               `json:"numCPU"`
	Rows          []warmstartJSON                   `json:"rows"`
	SecondProcess *experiments.WarmstartChildResult `json:"secondProcess,omitempty"`
}

// warmstartPoints are the Figure 4 hub-and-rim points measured cold vs
// warm: enough TPH surface that the cold compile is seconds, not micro-
// seconds, so the warm restore has something to beat.
var warmstartPoints = [][2]int{{2, 3}, {3, 3}, {3, 5}}

func runWarmstart(dir string, jsonOut bool) {
	fmt.Println("=== Warm start: persistent compile cache, cold vs restored session open ===")
	if dir == "" {
		tmp, err := os.MkdirTemp("", "incmap-store-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "mapbench:", err)
			os.Exit(1)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	fmt.Printf("%-4s %-4s %12s %12s %10s %12s %12s %6s %6s\n",
		"N", "M", "cold (s)", "warm (s)", "speedup", "coldEvo (s)", "warmEvo (s)", "hits", "pHits")
	out := warmstartFile{GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
	var last [2]int
	for _, pt := range warmstartPoints {
		sub, err := os.MkdirTemp(dir, fmt.Sprintf("n%dm%d-*", pt[0], pt[1]))
		if err != nil {
			fmt.Fprintln(os.Stderr, "mapbench:", err)
			os.Exit(1)
		}
		p := experiments.Warmstart(pt[0], pt[1], true, sub)
		row := warmstartJSON{
			N: p.N, M: p.M, TPH: p.TPH,
			ColdSeconds:       p.Cold.Seconds(),
			WarmSeconds:       p.Warm.Seconds(),
			ColdEvolveSeconds: p.ColdEvolve.Seconds(),
			WarmEvolveSeconds: p.WarmEvolve.Seconds(),
			Speedup:           p.Speedup,
			StoreHits:         p.StoreHits,
			PersistedHits:     p.PersistedHits,
			StoreBytes:        p.StoreBytes,
		}
		if p.Err != nil {
			row.Error = p.Err.Error()
		}
		out.Rows = append(out.Rows, row)
		fmt.Printf("%-4d %-4d %12.6f %12.6f %9.0fx %12.6f %12.6f %6d %6d\n",
			p.N, p.M, row.ColdSeconds, row.WarmSeconds, p.Speedup,
			row.ColdEvolveSeconds, row.WarmEvolveSeconds, p.StoreHits, p.PersistedHits)
		if p.Err == nil {
			last = pt
			// The deepest point's store feeds the second-process run below.
			if child, err := warmstartSecondProcess(sub, pt[0], pt[1]); err == nil {
				out.SecondProcess = &child
			} else {
				fmt.Fprintln(os.Stderr, "mapbench: second process:", err)
			}
		}
	}
	if sp := out.SecondProcess; sp != nil {
		fmt.Printf("\n--- second process (fresh OS process over the N=%d M=%d store) ---\n", last[0], last[1])
		fmt.Printf("warm open %fs, evolve %fs, warmStarts=%d storeHits=%d persistedHits=%d roundtrip=%v\n",
			sp.WarmSeconds, sp.EvolveSeconds, sp.WarmStarts, sp.StoreHits, sp.PersistedHits, sp.RoundtripOK)
	}
	fmt.Println()
	printPhases(drainPhases())
	if jsonOut {
		writeJSONFile("BENCH_warmstart.json", out)
	}
}

// warmstartSecondProcess re-executes this binary over the populated store
// so the warm numbers cross a real process boundary.
func warmstartSecondProcess(dir string, n, m int) (experiments.WarmstartChildResult, error) {
	var r experiments.WarmstartChildResult
	exe, err := os.Executable()
	if err != nil {
		return r, err
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), fmt.Sprintf("MAPBENCH_WARMSTART_CHILD=%s:%d:%d:tph", dir, n, m))
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return r, err
	}
	err = json.Unmarshal(outBytes, &r)
	return r, err
}

// runWarmstartChild is the child half: spec is "dir:n:m:style".
func runWarmstartChild(spec string) {
	parts := strings.Split(spec, ":")
	if len(parts) != 4 {
		fmt.Fprintf(os.Stderr, "mapbench: bad warmstart child spec %q\n", spec)
		os.Exit(2)
	}
	n, err1 := strconv.Atoi(parts[1])
	m, err2 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil {
		fmt.Fprintf(os.Stderr, "mapbench: bad warmstart child spec %q\n", spec)
		os.Exit(2)
	}
	r, err := experiments.WarmstartChild(parts[0], n, m, parts[3] == "tph")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mapbench:", err)
		os.Exit(1)
	}
	data, err := json.Marshal(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mapbench:", err)
		os.Exit(1)
	}
	os.Stdout.Write(append(data, '\n'))
}

// serveFile is the envelope written to BENCH_serve.json.
type serveFile struct {
	Tenants    int                         `json:"tenants"`
	Faults     bool                        `json:"faults"`
	GoMaxProcs int                         `json:"gomaxprocs"`
	NumCPU     int                         `json:"numCPU"`
	Soak       experiments.ServeSoakResult `json:"soak"`
}

// rolloutFile is the envelope written to BENCH_rollout.json. Pass is the
// conjunction of the soak's acceptance verdicts and the kill leg's — CI
// asserts on it (and mapbench exits non-zero when it is false).
type rolloutFile struct {
	Tenants    int                            `json:"tenants"`
	GoMaxProcs int                            `json:"gomaxprocs"`
	NumCPU     int                            `json:"numCPU"`
	Soak       experiments.RolloutSoakResult  `json:"soak"`
	Kill       *experiments.RolloutKillResult `json:"kill,omitempty"`
	KillError  string                         `json:"killError,omitempty"`
	Pass       bool                           `json:"pass"`
}

func runRolloutSoak(tenants int, jsonOut bool) {
	fmt.Println("=== Rollout soak: guarded cutovers, automatic rollbacks and a mid-backfill process kill ===")
	dir, err := os.MkdirTemp("", "incmap-rollout-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mapbench:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	res, err := experiments.RolloutSoak(experiments.RolloutSoakOptions{Tenants: tenants, Dir: dir})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mapbench: rollout-soak:", err)
		os.Exit(1)
	}
	fmt.Println(res.String())

	out := rolloutFile{
		Tenants: tenants, GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		Soak: res, Pass: res.Pass(),
	}
	kill, err := runRolloutKill()
	if err != nil {
		out.KillError = err.Error()
		out.Pass = false
		fmt.Fprintln(os.Stderr, "mapbench: rollout kill leg:", err)
	} else {
		out.Kill = &kill
		out.Pass = out.Pass && kill.Pass()
		fmt.Println(kill.String())
	}
	fmt.Println()
	if jsonOut {
		writeJSONFile("BENCH_rollout.json", out)
	}
	if !out.Pass {
		fmt.Fprintln(os.Stderr, "mapbench: rollout-soak: acceptance verdicts violated")
		os.Exit(1)
	}
}

// runRolloutKill re-executes this binary over a shared store directory,
// SIGKILLs it once two backfill checkpoints are on disk, and resumes the
// rollout in-process over the same directory.
func runRolloutKill() (experiments.RolloutKillResult, error) {
	var res experiments.RolloutKillResult
	dir, err := os.MkdirTemp("", "incmap-rollout-kill-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	exe, err := os.Executable()
	if err != nil {
		return res, err
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), "MAPBENCH_ROLLOUT_CHILD="+dir)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return res, err
	}
	if err := cmd.Start(); err != nil {
		return res, err
	}
	// Scan the child's progress lines; kill once two batches committed. A
	// TERMINAL line means the child's backfill outran us — report that as
	// a failure rather than resuming a finished rollout.
	batches, killErr := watchAndKill(cmd, stdout)
	_ = cmd.Wait() // reaps the SIGKILLed child; the error is expected
	if killErr != nil {
		return res, killErr
	}
	return experiments.RolloutResume(dir, batches)
}

// watchAndKill reads BATCH lines from the child and SIGKILLs it once the
// second checkpoint lands, returning how many batches had committed.
func watchAndKill(cmd *exec.Cmd, stdout io.Reader) (int, error) {
	sc := bufio.NewScanner(stdout)
	deadline := time.Now().Add(60 * time.Second)
	batches := 0
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "BATCH "):
			fmt.Sscanf(line, "BATCH %d", &batches)
			if batches >= 2 {
				return batches, cmd.Process.Kill()
			}
		case strings.HasPrefix(line, "TERMINAL "):
			_ = cmd.Process.Kill()
			return batches, fmt.Errorf("child backfill finished (%s) before the kill", line)
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			return batches, fmt.Errorf("child never reached 2 batches")
		}
	}
	_ = cmd.Process.Kill()
	return batches, fmt.Errorf("child exited early (last batch count %d)", batches)
}

// streamFile is the envelope written to BENCH_stream.json.
type streamFile struct {
	GoMaxProcs int                      `json:"goMaxProcs"`
	NumCPU     int                      `json:"numCPU"`
	Result     experiments.StreamResult `json:"result"`
	Phases     []obsv.PhaseSummary      `json:"phases,omitempty"`
}

// runStream drives the streaming executor over a chain-model store at
// real data volume: the client state is streamed through the update views
// into a segmented ring store, then every query and association view is
// drained through the executor while SMOs concurrently evolve the schema
// through a pipeline session. The materializing ORM path runs the same
// scan as the memory baseline; mapbench exits non-zero when the streaming
// peak misses the <10% acceptance bound.
func runStream(chain, rows, batch, evolves int, jsonOut bool) {
	fmt.Printf("=== Streaming executor: %d rows through the chain-%d views, SMOs evolving concurrently ===\n", rows, chain)
	res, err := experiments.Stream(experiments.StreamOptions{
		Chain: chain, Rows: rows, Batch: batch, Evolves: evolves,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mapbench: stream:", err)
		os.Exit(1)
	}
	fmt.Println(res.String())
	fmt.Println()
	phases := drainPhases()
	printPhases(phases)
	if jsonOut {
		writeJSONFile("BENCH_stream.json", streamFile{
			GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
			Result: res, Phases: phases,
		})
	}
	if !res.Pass {
		fmt.Fprintln(os.Stderr, "mapbench: stream: acceptance bound violated (peak streaming bytes vs materializing baseline)")
		os.Exit(1)
	}
}

func runServeSoak(tenants, evolves int, faults, jsonOut bool) {
	fmt.Println("=== Serve soak: multi-tenant daemon under concurrent evolves, reads and faults ===")
	dir, err := os.MkdirTemp("", "incmap-serve-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mapbench:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	res, err := experiments.ServeSoak(experiments.ServeSoakOptions{
		Tenants:          tenants,
		EvolvesPerTenant: evolves,
		Faults:           faults,
		Dir:              dir,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mapbench: serve-soak:", err)
		os.Exit(1)
	}
	fmt.Println(res.String())
	if jsonOut {
		writeJSONFile("BENCH_serve.json", serveFile{
			Tenants: tenants, Faults: faults,
			GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
			Soak: res,
		})
	}
}
