module github.com/ormkit/incmap

go 1.22
