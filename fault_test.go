package incmap_test

import (
	"context"
	"errors"
	"testing"
	"time"

	incmap "github.com/ormkit/incmap"
	"github.com/ormkit/incmap/internal/workload"
)

// TestFacadeCompileCtxCancel drives cancellation through the public facade:
// a pre-cancelled context stops compilation before any validation work.
func TestFacadeCompileCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	views, err := incmap.CompileCtx(ctx, workload.PaperFull())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if views != nil {
		t.Fatal("cancelled compile returned views")
	}
}

// TestFacadeBudgetExceeded exercises the public Budget / BudgetExceededError
// aliases end to end.
func TestFacadeBudgetExceeded(t *testing.T) {
	m := workload.PaperFull()
	opts := incmap.CompilerOptions{Budget: incmap.Budget{MaxWallTime: time.Nanosecond}}
	_, stats, err := incmap.CompileWithCtx(context.Background(), m, opts)
	var be *incmap.BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *incmap.BudgetExceededError", err)
	}
	if be.Reason != "wall time" {
		t.Fatalf("Reason = %q, want wall time", be.Reason)
	}
	if stats.Cancelled == 0 && be.Elapsed == 0 {
		t.Fatalf("budget error carries no partial stats: %+v", be)
	}
}

// TestFacadeSessionEvolveFallback runs the fallback ladder through the
// public Session type: an incremental attempt that exhausts its budget on
// the first containment check falls back to a full recompile, and the
// evolved mapping still compiles and answers.
func TestFacadeSessionEvolveFallback(t *testing.T) {
	m := workload.PaperInitial()
	s, err := incmap.NewSessionCompile(context.Background(),
		m, incmap.SessionOptions{
			Incremental: incmap.IncrementalOptions{
				Budget: incmap.Budget{MaxWallTime: time.Nanosecond},
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	op := incmap.AddEntityTPT("Employee", "Person",
		[]incmap.Attribute{{Name: "Department", Type: incmap.KindString, Nullable: true}},
		"Emp", map[string]string{"Id": "Id", "Department": "Dept"})
	if _, _, err := s.Evolve(context.Background(), op); err != nil {
		t.Fatalf("Evolve: %v", err)
	}
	st := s.Stats()
	if st.Fallbacks != 1 || st.Incremental != 0 {
		t.Fatalf("stats = %+v, want exactly one fallback", st)
	}
	nm, nv := s.Generation()
	if nm.Client.Type("Employee") == nil {
		t.Fatal("fallback did not install the evolved generation")
	}
	if err := incmap.Roundtrip(nm, nv, incmap.NewClientState()); err != nil {
		t.Fatalf("evolved generation does not roundtrip: %v", err)
	}
}

// TestFacadeErrUnsupportedSMO pins the exported sentinel: a Session with no
// FullEvolver capability reports unsupported operations via the public var.
func TestFacadeErrUnsupportedSMO(t *testing.T) {
	if incmap.ErrUnsupportedSMO == nil {
		t.Fatal("ErrUnsupportedSMO is nil")
	}
	if !errors.Is(incmap.ErrUnsupportedSMO, incmap.ErrUnsupportedSMO) {
		t.Fatal("sentinel does not match itself")
	}
}
